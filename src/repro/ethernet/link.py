"""Full-duplex link transmitters.

A :class:`LinkTransmitter` models *one direction* of a full-duplex link: an
egress queue (FIFO or strict-priority), a serialisation stage at the link
capacity and a propagation stage towards the remote receiver.  Because the
link is full duplex there is no arbitration with the opposite direction and
no collision; the transmitter is simply work-conserving and non-preemptive —
once a frame starts, it finishes, which is precisely the source of the
``max_{q > p} b_j`` blocking term in the paper's priority bound.
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable

from repro.errors import ConfigurationError
from repro.ethernet.frame import EthernetFrame
from repro.shaping.queues import FifoQueue, StrictPriorityQueues
from repro.simulation.engine import Simulator
from repro.simulation.statistics import Counter
from repro.simulation.trace import TraceRecorder

__all__ = ["LinkTransmitter"]

#: Type of the delivery callback: receives the frame and nothing else (the
#: simulation time is available from the simulator when the callback fires).
DeliveryCallback = Callable[[EthernetFrame], None]


class LinkTransmitter:
    """One direction of a full-duplex link, with its egress queue.

    Parameters
    ----------
    simulator:
        The event loop.
    name:
        Label used in traces, e.g. ``"station-03->switch-0"``.
    capacity:
        Serialisation rate in bits per second.
    propagation_delay:
        One-way propagation delay in seconds.
    queue:
        The egress queueing discipline (:class:`FifoQueue` or
        :class:`StrictPriorityQueues`).
    deliver:
        Callback invoked when a frame has been completely received at the
        other end of the link.
    trace:
        Optional trace recorder.
    """

    def __init__(self, simulator: Simulator, name: str, capacity: float,
                 propagation_delay: float,
                 queue: FifoQueue | StrictPriorityQueues,
                 deliver: DeliveryCallback,
                 trace: TraceRecorder | None = None) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"link capacity must be positive, got {capacity!r}")
        if propagation_delay < 0:
            raise ConfigurationError(
                f"propagation delay must be non-negative, "
                f"got {propagation_delay!r}")
        self.simulator = simulator
        self.name = name
        self.capacity = float(capacity)
        self.propagation_delay = float(propagation_delay)
        self.queue = queue
        #: Specialisation handle: the bare FIFO when the discipline is a
        #: plain unbounded FifoQueue (the common benchmark configuration),
        #: letting enqueue/dequeue skip one method call per frame.
        self._fifo = (queue if type(queue) is FifoQueue
                      and queue.capacity is None else None)
        self.deliver = deliver
        # `trace or ...` would discard an *empty* recorder
        # (TraceRecorder defines __len__), silently disabling tracing.
        self.trace = TraceRecorder(enabled=False) if trace is None else trace
        self._busy = False
        self.frames_sent = Counter(f"{name}.frames_sent")
        self.bits_sent = 0.0
        self._busy_time = 0.0

    # -- statistics ------------------------------------------------------------

    @property
    def drops(self) -> int:
        """Frames dropped by the egress queue because of overflow."""
        return self.queue.drops

    @property
    def busy_time(self) -> float:
        """Cumulative time spent serialising frames (seconds)."""
        return self._busy_time

    def utilization(self, duration: float) -> float:
        """Fraction of ``duration`` the transmitter spent serialising."""
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        return self._busy_time / duration

    # -- operation --------------------------------------------------------------

    def enqueue(self, frame: EthernetFrame) -> bool:
        """Queue a frame for transmission; start transmitting if idle.

        The frame is queued directly — it carries the ``size`` and
        ``priority`` attributes the disciplines dispatch on, so no wrapper
        :class:`~repro.shaping.queues.QueuedItem` is allocated per hop.
        Returns ``False`` when the frame was dropped by the egress queue.
        """
        fifo = self._fifo
        if fifo is not None:
            # Inlined FifoQueue.push for the unbounded FIFO (never drops).
            fifo._items.append(frame)
            occupancy = fifo._occupancy + frame.size
            fifo._occupancy = occupancy
            if occupancy > fifo._max_occupancy:
                fifo._max_occupancy = occupancy
            accepted = True
        else:
            accepted = self.queue.push(frame)
        if self.trace.enabled:
            self.trace.record(self.simulator.now, "frame.enqueue", self.name,
                              frame_id=frame.frame_id, flow=frame.flow_name,
                              accepted=accepted,
                              queue_bits=self.queue.occupancy)
        if accepted and not self._busy:
            self._start_next()
        return accepted

    def _start_next(self) -> None:
        fifo = self._fifo
        if fifo is not None:
            # Inlined FifoQueue.pop.
            items = fifo._items
            if not items:
                self._busy = False
                return
            frame: EthernetFrame = items.popleft()
            if items:
                fifo._occupancy -= frame.size
            else:
                fifo._occupancy = 0.0
        else:
            frame = self.queue.pop()
            if frame is None:
                self._busy = False
                return
        self._busy = True
        transmission = frame.size / self.capacity
        self._busy_time += transmission
        if self.trace.enabled:
            self.trace.record(self.simulator.now, "frame.tx_start", self.name,
                              frame_id=frame.frame_id, flow=frame.flow_name)
        # Inlined Simulator.post — the single hottest schedule site (once
        # per transmitted frame).  The entry shape is defined by
        # EventQueue.push_fast; change them together.
        simulator = self.simulator
        queue = simulator._queue
        heappush(queue._heap, (simulator._now + transmission,
                               next(queue._sequence), self._complete, frame))

    def _complete(self, frame: EthernetFrame) -> None:
        self.frames_sent._value += 1  # inlined Counter.increment (hot path)
        self.bits_sent += frame.size
        if self.trace.enabled:
            self.trace.record(self.simulator.now, "frame.tx_end", self.name,
                              frame_id=frame.frame_id, flow=frame.flow_name)
        # Deliver the frame to the remote end after propagation; reception of
        # the full frame coincides with the end of serialisation plus the
        # propagation delay (store-and-forward semantics).
        if self.propagation_delay == 0.0:
            # Zero-propagation fusion: the delivery "event" fires at this
            # exact instant anyway, so it is processed inline (counted, but
            # with no heap round-trip).  The delivery neither reads state
            # another same-instant event could still change, nor changes
            # state such an event reads, so the fused ordering is
            # result-equivalent — the golden-equivalence tests pin this
            # down bit-exactly.
            self._start_next()
            self.simulator.dispatch_immediate(self.deliver, frame)
        else:
            self.simulator.post(self.propagation_delay, self.deliver, frame)
            self._start_next()
