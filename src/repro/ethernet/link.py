"""Full-duplex link transmitters.

A :class:`LinkTransmitter` models *one direction* of a full-duplex link: an
egress queue (FIFO or strict-priority), a serialisation stage at the link
capacity and a propagation stage towards the remote receiver.  Because the
link is full duplex there is no arbitration with the opposite direction and
no collision; the transmitter is simply work-conserving and non-preemptive —
once a frame starts, it finishes, which is precisely the source of the
``max_{q > p} b_j`` blocking term in the paper's priority bound.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.ethernet.frame import EthernetFrame
from repro.shaping.queues import FifoQueue, QueuedItem, StrictPriorityQueues
from repro.simulation.engine import Simulator
from repro.simulation.statistics import Counter
from repro.simulation.trace import TraceRecorder

__all__ = ["LinkTransmitter"]

#: Type of the delivery callback: receives the frame and nothing else (the
#: simulation time is available from the simulator when the callback fires).
DeliveryCallback = Callable[[EthernetFrame], None]


class LinkTransmitter:
    """One direction of a full-duplex link, with its egress queue.

    Parameters
    ----------
    simulator:
        The event loop.
    name:
        Label used in traces, e.g. ``"station-03->switch-0"``.
    capacity:
        Serialisation rate in bits per second.
    propagation_delay:
        One-way propagation delay in seconds.
    queue:
        The egress queueing discipline (:class:`FifoQueue` or
        :class:`StrictPriorityQueues`).
    deliver:
        Callback invoked when a frame has been completely received at the
        other end of the link.
    trace:
        Optional trace recorder.
    """

    def __init__(self, simulator: Simulator, name: str, capacity: float,
                 propagation_delay: float,
                 queue: FifoQueue | StrictPriorityQueues,
                 deliver: DeliveryCallback,
                 trace: TraceRecorder | None = None) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"link capacity must be positive, got {capacity!r}")
        if propagation_delay < 0:
            raise ConfigurationError(
                f"propagation delay must be non-negative, "
                f"got {propagation_delay!r}")
        self.simulator = simulator
        self.name = name
        self.capacity = float(capacity)
        self.propagation_delay = float(propagation_delay)
        self.queue = queue
        self.deliver = deliver
        self.trace = trace or TraceRecorder(enabled=False)
        self._busy = False
        self.frames_sent = Counter(f"{name}.frames_sent")
        self.bits_sent = 0.0
        self._busy_time = 0.0

    # -- statistics ------------------------------------------------------------

    @property
    def drops(self) -> int:
        """Frames dropped by the egress queue because of overflow."""
        return self.queue.drops

    @property
    def busy_time(self) -> float:
        """Cumulative time spent serialising frames (seconds)."""
        return self._busy_time

    def utilization(self, duration: float) -> float:
        """Fraction of ``duration`` the transmitter spent serialising."""
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        return self._busy_time / duration

    # -- operation --------------------------------------------------------------

    def enqueue(self, frame: EthernetFrame) -> bool:
        """Queue a frame for transmission; start transmitting if idle.

        Returns ``False`` when the frame was dropped by the egress queue.
        """
        item = QueuedItem(size=frame.size,
                          enqueue_time=self.simulator.now,
                          priority=frame.priority, payload=frame)
        accepted = self.queue.push(item)
        self.trace.record(self.simulator.now, "frame.enqueue", self.name,
                          frame_id=frame.frame_id, flow=frame.flow_name,
                          accepted=accepted, queue_bits=self.queue.occupancy)
        if accepted and not self._busy:
            self._start_next()
        return accepted

    def _start_next(self) -> None:
        item = self.queue.pop()
        if item is None:
            self._busy = False
            return
        frame: EthernetFrame = item.payload
        self._busy = True
        transmission = frame.size / self.capacity
        self._busy_time += transmission
        self.trace.record(self.simulator.now, "frame.tx_start", self.name,
                          frame_id=frame.frame_id, flow=frame.flow_name)
        self.simulator.schedule(transmission, self._complete, frame)

    def _complete(self, frame: EthernetFrame) -> None:
        self.frames_sent.increment()
        self.bits_sent += frame.size
        self.trace.record(self.simulator.now, "frame.tx_end", self.name,
                          frame_id=frame.frame_id, flow=frame.flow_name)
        # Deliver the frame to the remote end after propagation; reception of
        # the full frame coincides with the end of serialisation plus the
        # propagation delay (store-and-forward semantics).
        self.simulator.schedule(self.propagation_delay, self.deliver, frame)
        self._start_next()
