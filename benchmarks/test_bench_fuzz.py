"""Fuzzing throughput: scenario generation and cell evaluation rates.

Two measurements land in ``benchmarks/results/fuzz_throughput.{csv,txt}``:

* ``generated scenarios/s`` — the rate of the seeded
  :class:`~repro.fuzz.generator.ScenarioGenerator` alone (pure spec
  derivation, no evaluation); the CI fuzz-smoke budget is a direct
  function of this and of the evaluation rate,
* ``fuzzed cells/s`` — full fuzz-campaign cells per second, each cell
  double-evaluated (memoized + fresh naive) with every invariant checked.

The floors are deliberately loose — they catch an accidentally quadratic
generator or a cell evaluation that stopped reusing the memoized campaign
runner, not scheduler jitter on a busy CI machine.
"""

from __future__ import annotations

import time

from repro import units
from repro.fuzz import FuzzCampaign, ScenarioGenerator

#: Scenario derivation is hashing plus a few ``random.choice`` draws;
#: even a slow container manages thousands per second.
MIN_GENERATED_PER_SEC = 1_000.0

#: Each cell runs two full analysis + simulation evaluations; measured
#: ~15 cells/s on the development container at the 160 ms horizon.
MIN_CELLS_PER_SEC = 1.0

#: Generator sample: large enough to amortise timer overhead.
GENERATE_COUNT = 2_000

#: Campaign sample: small, but past the per-process warm-up.
FUZZ_COUNT = 12


def test_bench_fuzz_throughput(report):
    started = time.perf_counter()
    scenarios = ScenarioGenerator(0).generate(GENERATE_COUNT)
    generation_elapsed = time.perf_counter() - started
    generated_rate = len(scenarios) / generation_elapsed

    campaign = FuzzCampaign(count=FUZZ_COUNT, seed=0,
                            duration=units.ms(160))
    started = time.perf_counter()
    result = campaign.run()
    fuzz_elapsed = time.perf_counter() - started
    cell_rate = result.cells / fuzz_elapsed

    report("fuzz_throughput",
           "Fuzzing throughput: generation vs full cell evaluation",
           ["metric", "value"],
           [("generated_scenarios", len(scenarios)),
            ("generated_per_sec", f"{generated_rate:,.0f}"),
            ("fuzzed_cells", result.cells),
            ("cells_per_sec", f"{cell_rate:.2f}"),
            ("events_total", result.events_processed),
            ("violations", result.violation_count),
            ("max_tightness", f"{result.max_tightness:.3f}"),
            ("min_generated_per_sec", f"{MIN_GENERATED_PER_SEC:,.0f}"),
            ("min_cells_per_sec", f"{MIN_CELLS_PER_SEC:.1f}")])

    assert result.all_invariants_hold, "fuzz invariants violated"
    assert generated_rate >= MIN_GENERATED_PER_SEC, (
        f"scenario generation at {generated_rate:,.0f}/s "
        f"(floor {MIN_GENERATED_PER_SEC:,.0f}/s) — the generator has "
        f"regressed to something worse than hashing")
    assert cell_rate >= MIN_CELLS_PER_SEC, (
        f"fuzz evaluation at {cell_rate:.2f} cells/s "
        f"(floor {MIN_CELLS_PER_SEC:.1f}/s) — cell evaluation no longer "
        f"amortises the memoized campaign runner")
