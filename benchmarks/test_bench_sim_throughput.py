"""Perf regression guard: the discrete-event simulation kernel.

The kernel rewrite (slim ``(time, sequence)``-keyed heap entries, inlined
run loop, ``__slots__`` frames, trace-guarded hot paths, zero-propagation
delivery fusion) took the bound-vs-sim workload from ~135k to ~700k
events/second on the development container — a ≥5x speedup, verified
bit-identical by ``tests/simulation/test_golden_equivalence.py``.

Two measurements are recorded into ``benchmarks/results/``:

* ``sim_throughput`` — events/second of the bound-vs-sim workload (the
  paper's 16-station case study on the single-switch star, both
  multiplexing policies) against the pre-rewrite baseline,
* ``monte_carlo_grid`` — wall time of a 32-cell Monte-Carlo campaign
  (8 seeds × 2 scenarios × 2 policies) with ``jobs=2`` process fan-out.

The assertions are deliberately generous (CI machines are slower and
noisier than the development container): they catch a return of the
interpreted hot paths, not a few percent of jitter.
"""

from __future__ import annotations

import time

from repro import units
from repro.analysis.validation import star_for_message_set
from repro.ethernet.network_sim import EthernetNetworkSimulator
from repro.simulation.campaign import SimulationCampaign

#: Pre-rewrite kernel throughput (events/second) on this workload, measured
#: on the development container as the best of five interleaved A/B runs
#: (see DESIGN.md §6, "Simulation performance").  Kept fixed as the
#: "before" of the recorded speedup.
PRE_PR_EVENTS_PER_SEC = {"fcfs": 135_006, "strict-priority": 116_815}

#: The simulated horizon: 20 × the validation default (6.4 s of network
#: time), long enough to amortise per-run setup out of the measurement.
DURATION = units.ms(320) * 20

#: Generous CI floor: the rewrite measures ≥5x on the development
#: container; regressing below 2.5x means an interpreted hot path came
#: back, not that the runner is slow.
MIN_SPEEDUP = 2.5

#: Wall-time ceiling for the 32-cell Monte-Carlo grid (measured ~1 s).
GRID_THRESHOLD_S = 60.0


def _throughput(network, message_set, policy: str) -> float:
    """Best-of-three events/second of one simulation configuration."""
    best = 0.0
    for _ in range(3):
        simulator = EthernetNetworkSimulator(
            network, message_set.messages, policy=policy,
            scenario="synchronized", seed=1)
        started = time.perf_counter()
        simulator.run(duration=DURATION)
        elapsed = time.perf_counter() - started
        best = max(best, simulator.simulator.events_processed / elapsed)
    return best


def test_bench_sim_throughput(real_case, report):
    network = star_for_message_set(real_case)
    rows = []
    speedups = {}
    for policy in ("fcfs", "strict-priority"):
        rate = _throughput(network, real_case, policy)
        baseline = PRE_PR_EVENTS_PER_SEC[policy]
        speedups[policy] = rate / baseline
        rows.append((policy, f"{rate:,.0f}", f"{baseline:,}",
                     f"{rate / baseline:.2f}x", f"{MIN_SPEEDUP:.1f}x"))
    report("sim_throughput",
           "Simulation kernel throughput vs the pre-rewrite baseline",
           ["policy", "events_per_sec", "pre_rewrite_events_per_sec",
            "speedup", "min_required"],
           rows)
    for policy, speedup in speedups.items():
        assert speedup >= MIN_SPEEDUP, (
            f"{policy} kernel throughput regressed to {speedup:.2f}x of the "
            f"pre-rewrite baseline (floor {MIN_SPEEDUP}x) — an interpreted "
            f"hot path is back")


def test_bench_monte_carlo_grid(report):
    campaign = SimulationCampaign(
        station_count=16, workload_seed=7,
        seeds=tuple(range(1, 9)),
        scenarios=("synchronized", "random"),
        policies=("fcfs", "strict-priority"),
        jobs=2)
    assert len(campaign.cells()) == 32
    started = time.perf_counter()
    result = campaign.run()
    elapsed = time.perf_counter() - started
    report("monte_carlo_grid",
           "32-cell Monte-Carlo campaign (8 seeds x 2 scenarios x "
           "2 policies, jobs=2)",
           ["metric", "value"],
           [("cells", result.cells),
            ("rows", len(result.rows)),
            ("events_total", result.events_processed),
            ("all_bounds_hold", result.all_bounds_hold),
            ("max_tightness", f"{result.max_tightness:.3f}"),
            ("wall_time_s", f"{elapsed:.3f}"),
            ("threshold_s", f"{GRID_THRESHOLD_S:.1f}")])
    assert result.cells == 32
    assert result.all_bounds_hold, "a simulated latency exceeded its bound"
    assert elapsed < GRID_THRESHOLD_S, (
        f"32-cell Monte-Carlo grid took {elapsed:.2f}s "
        f"(threshold {GRID_THRESHOLD_S}s) — the simulation kernel or the "
        f"fan-out machinery has regressed")
