"""E7 — ablations on the design parameters.

Three sweeps on the analytic model:

* ``t_techno`` (switch relaying-delay bound) — enters every bound additively,
* token-bucket burst scaling — every bound grows linearly with the bursts and
  the constraints eventually break,
* non-preemption — the ``max_{q>p} b_j`` blocking term costs the urgent class
  the most in relative terms.
"""

from repro import PriorityClass, units
from repro.analysis import (
    burst_scaling_sweep,
    preemption_ablation,
    technology_delay_sweep,
)
from repro.reporting import format_ms, yes_no


def run_sensitivity(real_case):
    return (technology_delay_sweep(real_case),
            burst_scaling_sweep(real_case),
            preemption_ablation(real_case))


def test_bench_sensitivity(benchmark, real_case, report):
    delay_rows, burst_rows, preemption_rows = benchmark(run_sensitivity,
                                                        real_case)

    report(
        "sensitivity_ttechno", "Sensitivity to the relaying-delay bound",
        ["t_techno", "FCFS bound", "urgent priority bound", "urgent ok"],
        [(format_ms(row.technology_delay), format_ms(row.fcfs_bound),
          format_ms(row.urgent_priority_bound),
          yes_no(row.urgent_meets_deadline))
         for row in delay_rows])

    report(
        "sensitivity_burst", "Sensitivity to the shaper burst size",
        ["burst factor", "FCFS bound", "urgent bound", "background bound",
         "all constraints met"],
        [(f"x{row.factor:g}", format_ms(row.fcfs_bound),
          format_ms(row.priority_bounds.get(PriorityClass.URGENT)),
          format_ms(row.priority_bounds.get(PriorityClass.BACKGROUND)),
          yes_no(row.all_constraints_met))
         for row in burst_rows])

    report(
        "sensitivity_preemption", "Cost of non-preemption per class",
        ["class", "non-preemptive bound", "preemptive bound",
         "blocking cost"],
        [(row.priority.label, format_ms(row.non_preemptive_bound),
          format_ms(row.preemptive_bound), format_ms(row.blocking_cost))
         for row in preemption_rows])

    # t_techno enters additively: the sweep is strictly increasing.
    fcfs_bounds = [row.fcfs_bound for row in delay_rows]
    assert fcfs_bounds == sorted(fcfs_bounds)
    # The urgent class survives every swept t_techno value.
    assert all(row.urgent_meets_deadline for row in delay_rows)
    # Burst scaling: bounds grow, constraints eventually break.
    assert burst_rows[0].factor < burst_rows[-1].factor
    assert burst_rows[-1].fcfs_bound > burst_rows[0].fcfs_bound
    assert not burst_rows[-1].all_constraints_met
    # Non-preemption is costliest (relatively) for the urgent class.
    relative = {row.priority: row.blocking_cost / row.non_preemptive_bound
                for row in preemption_rows}
    assert relative[PriorityClass.URGENT] == max(relative.values())
