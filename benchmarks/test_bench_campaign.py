"""Campaign engine — memoized vs naive batch analysis.

Times the scenario campaign runner on the scalability ladder twice: once
with the shared :class:`~repro.campaigns.cache.AnalysisCache` (the default)
and once in naive mode, which rebuilds and re-aggregates every scenario's
message set from scratch.  The memoized runner must win — that speedup is
the campaign layer's reason to exist — and the recorded table lets future
PRs track the ratio.
"""

import time

from repro.campaigns import CampaignRunner, builtin_scenarios, select

#: Timing loops per mode; small because the naive mode is the slow one.
ROUNDS = 5


def _time_runner(scenarios, *, memoize: bool) -> tuple[float, object]:
    """Best-of-ROUNDS wall-clock seconds for one full campaign run."""
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        runner = CampaignRunner(memoize=memoize)
        started = time.perf_counter()
        result = runner.run(scenarios)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_bench_campaign_memoization(benchmark, report):
    ladder = select("ladder")
    everything = builtin_scenarios()

    naive_time, naive_result = _time_runner(ladder, memoize=False)
    memo_time, memo_result = _time_runner(ladder, memoize=True)
    full_time, full_result = _time_runner(everything, memoize=True)

    # The benchmark fixture records the memoized ladder run for history.
    benchmark.pedantic(
        lambda: CampaignRunner().run(ladder), rounds=3, iterations=1)

    speedup = naive_time / memo_time
    report(
        "campaign", "Campaign runner: memoized vs naive recomputation",
        ["campaign", "scenarios", "rows", "naive", "memoized", "speedup"],
        [("scalability ladder", len(ladder), len(memo_result.rows()),
          f"{naive_time * 1e3:.2f} ms", f"{memo_time * 1e3:.2f} ms",
          f"{speedup:.1f}x"),
         ("full catalogue", len(everything), len(full_result.rows()),
          "-", f"{full_time * 1e3:.2f} ms", "-")])

    # Same answers either way ...
    assert len(naive_result.rows()) == len(memo_result.rows())
    # ... but the memoizing runner must beat naive recomputation.
    assert memo_time < naive_time, (
        f"memoized ladder run ({memo_time * 1e3:.2f} ms) is not faster "
        f"than naive recomputation ({naive_time * 1e3:.2f} ms)")
    # The ladder shares one base workload: the cache must prove it.
    stats = memo_result.stats
    assert stats["base_sets"].misses == 1
    assert stats["base_aggregates"].hits >= len(ladder) - 1
