"""E1 / Figure 1 — delay bounds for the two approaches.

Regenerates the per-class worst-case delay bounds (FCFS vs four-queue strict
priority, 10 Mbps, t_techno = 16 µs) on the synthetic case study, prints the
figure's data and asserts the paper's four qualitative findings:

1. FCFS violates the 3 ms urgent-class constraint despite 10 Mbps,
2. the priority bound of the urgent class is below 3 ms,
3. the priority bound of the periodic class is below the FCFS bound,
4. every real-time constraint is met under the priority scheme.
"""

from repro import PaperCaseStudy, PriorityClass, units
from repro.reporting import format_ms, yes_no


def compute_figure1(real_case):
    study = PaperCaseStudy(real_case)
    return study, study.figure1_rows()


def test_bench_figure1(benchmark, real_case, report):
    study, rows = benchmark(compute_figure1, real_case)

    report(
        "figure1", "Figure 1 - Delay bounds for the two approaches (10 Mbps)",
        ["priority class", "messages", "constraint", "FCFS bound", "FCFS ok",
         "priority bound", "priority ok"],
        [(row.priority.label, row.message_count, format_ms(row.deadline),
          format_ms(row.fcfs_bound), yes_no(row.fcfs_meets_deadline),
          format_ms(row.priority_bound), yes_no(row.priority_meets_deadline))
         for row in rows])

    by_class = {row.priority: row for row in rows}
    # Claim 1: FCFS misses the 3 ms constraint.
    assert not by_class[PriorityClass.URGENT].fcfs_meets_deadline
    assert study.fcfs_bound() > units.ms(3)
    # Claim 2: the urgent class's priority bound is below 3 ms.
    assert by_class[PriorityClass.URGENT].priority_bound < units.ms(3)
    # Claim 3: the periodic class improves over FCFS.
    assert by_class[PriorityClass.PERIODIC].priority_bound < study.fcfs_bound()
    # Claim 4: every constraint respected with priorities.
    assert all(row.priority_meets_deadline for row in rows)
