"""E8 — scalability of the three approaches.

Replicates the case-study traffic and reports, per scale factor, whether the
1553B cyclic schedule, plain-FCFS Ethernet and prioritised Ethernet still
meet every constraint — quantifying the paper's "expandability" argument.
"""

from repro.analysis.scalability import scalability_sweep
from repro.reporting import yes_no


def test_bench_scalability(benchmark, real_case, report):
    rows = benchmark.pedantic(scalability_sweep, args=(real_case,),
                              kwargs={"scales": (1, 2, 3, 4, 6, 8)},
                              rounds=3, iterations=1)

    report(
        "scalability", "Feasibility vs traffic scale (replicated case study)",
        ["scale", "messages", "1553B worst minor-frame util", "1553B ok",
         "Ethernet util", "FCFS ok", "priority ok"],
        [(row.scale, row.message_count,
          f"{row.milstd1553_utilization * 100:.0f} %",
          yes_no(row.milstd1553_feasible),
          f"{row.ethernet_utilization * 100:.1f} %",
          yes_no(row.fcfs_feasible), yes_no(row.priority_feasible))
         for row in rows])

    # Shape: the bus is near its limit at scale 1 and breaks early; FCFS
    # Ethernet is broken from the start (3 ms class); prioritised Ethernet
    # survives strictly longer than the bus.
    assert rows[0].milstd1553_feasible
    assert not rows[0].fcfs_feasible
    assert rows[0].priority_feasible
    last_bus = max((row.scale for row in rows if row.milstd1553_feasible),
                   default=0)
    last_priority = max((row.scale for row in rows if row.priority_feasible),
                        default=0)
    assert last_priority > last_bus
