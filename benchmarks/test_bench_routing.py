"""Routing engine throughput and multi-hop fuzz cell evaluation rate.

Two measurements land in ``benchmarks/results/routing_throughput.{csv,txt}``:

* ``routes/s`` — deterministic shortest-path routes computed over every
  ordered end-system pair of a 200-node random switch fabric (the
  destination-keyed Dijkstra cache makes this the same work the
  simulator's forwarding tables and the end-to-end bound path do),
* ``multi-hop cells/s`` — full fuzz-campaign cells per second on a
  graph-only generator stream, each cell routing its flows, running the
  concatenated per-hop analysis and double-checking the simulation
  against the bound and the per-port backlog ceilings.

The floors are deliberately loose — they catch a routing engine that
stopped caching per-destination distances (quadratic Dijkstra blow-up)
or a multi-hop cell evaluation that rebuilds the network per flow, not
scheduler jitter on a busy CI machine.
"""

from __future__ import annotations

import time
from itertools import permutations

from repro import units
from repro.fuzz import FuzzCampaign, GeneratorConfig
from repro.topology import RoutingEngine, random_graph_spec

#: 40 switches + 160 stations = 200 nodes; ~25k ordered station pairs.
SWITCH_COUNT = 40
STATION_COUNT = 160

#: Extra fabric links beyond the spanning tree, for route diversity.
EXTRA_LINKS = 30

#: One backward Dijkstra per destination (cached) plus a greedy forward
#: walk per pair; the development container manages ~60k routes/s.
MIN_ROUTES_PER_SEC = 2_000.0

#: Each multi-hop cell routes, analyzes and simulates a 3-4 switch
#: fabric twice (memoized + fresh); measured ~4 cells/s at the 160 ms
#: horizon on the development container.
MIN_CELLS_PER_SEC = 0.25

#: Multi-hop campaign sample: small, but past the per-process warm-up.
FUZZ_COUNT = 6

#: Graph-only generator stream for the cell-rate measurement.
GRAPH_CONFIG = GeneratorConfig(
    station_counts=(4, 5),
    replications=(1,),
    topology_kinds=("graph",),
    capacities_mbps=(10.0,),
    size_factors=(0.5, 1.0),
    graph_families=("diamond", "ring", "random"),
    graph_switch_counts=(3, 4),
    graph_seeds=(0, 1),
    graph_extra_links=(0, 1),
)


def test_bench_routing_throughput(report, bench_values):
    spec = random_graph_spec(STATION_COUNT, switch_count=SWITCH_COUNT,
                             extra_links=EXTRA_LINKS, seed=0)
    engine = RoutingEngine(spec)
    pairs = list(permutations(spec.end_systems, 2))

    started = time.perf_counter()
    routes = [engine.shortest_path(source, destination)
              for source, destination in pairs]
    routing_elapsed = time.perf_counter() - started
    route_rate = len(routes) / routing_elapsed
    longest = max(len(route) for route in routes)

    campaign = FuzzCampaign(count=FUZZ_COUNT, seed=0, config=GRAPH_CONFIG,
                            duration=units.ms(160))
    started = time.perf_counter()
    result = campaign.run()
    fuzz_elapsed = time.perf_counter() - started
    cell_rate = result.cells / fuzz_elapsed

    report("routing_throughput",
           "Routing throughput: 200-node fabric and multi-hop fuzz cells",
           ["metric", "value"],
           [("nodes", len(spec.end_systems) + len(spec.switches)),
            ("fabric_links", len(spec.links)),
            ("routes", len(routes)),
            ("routes_per_sec", f"{route_rate:,.0f}"),
            ("longest_route_hops", longest - 1),
            ("multihop_cells", result.cells),
            ("cells_per_sec", f"{cell_rate:.2f}"),
            ("violations", result.violation_count),
            ("max_tightness", f"{result.max_tightness:.3f}"),
            ("min_routes_per_sec", f"{MIN_ROUTES_PER_SEC:,.0f}"),
            ("min_cells_per_sec", f"{MIN_CELLS_PER_SEC:.2f}")])
    bench_values({"bench.routing.routes-per-sec": f"{route_rate:,.0f}",
                  "bench.routing.nodes":
                      str(len(spec.end_systems) + len(spec.switches))})

    assert result.all_invariants_hold, "multi-hop fuzz invariants violated"
    assert len(routes) == len(pairs)
    assert route_rate >= MIN_ROUTES_PER_SEC, (
        f"routing at {route_rate:,.0f} routes/s "
        f"(floor {MIN_ROUTES_PER_SEC:,.0f}/s) — the engine has stopped "
        f"caching per-destination distances")
    assert cell_rate >= MIN_CELLS_PER_SEC, (
        f"multi-hop fuzz evaluation at {cell_rate:.2f} cells/s "
        f"(floor {MIN_CELLS_PER_SEC:.2f}/s) — graph cells no longer "
        f"amortise the routed network build")
