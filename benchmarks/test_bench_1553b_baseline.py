"""E3 — the MIL-STD-1553B baseline (Section 2 of the paper).

Builds the 160 ms / 20 ms cyclic schedule for the case study, simulates the
bus and reports per-minor-frame utilisation plus per-class response times —
the operating point the switched-Ethernet migration starts from.
"""

from repro import PriorityClass, units
from repro.analysis import baseline_1553_report
from repro.reporting import format_ms


def test_bench_1553b_baseline(benchmark, real_case, report):
    result = benchmark.pedantic(
        baseline_1553_report, args=(real_case,),
        kwargs={"simulation_duration": units.ms(320)}, rounds=3,
        iterations=1)

    report(
        "milstd1553_minor_frames",
        "MIL-STD-1553B minor frame occupancy (worst case)",
        ["minor frame", "busy time", "utilisation"],
        [(index, format_ms(duration), f"{utilization * 100:.1f} %")
         for index, (duration, utilization)
         in enumerate(zip(result.minor_frame_durations,
                          result.minor_frame_utilizations))])

    report(
        "milstd1553_response_times",
        "MIL-STD-1553B response times per class (analytic vs simulated)",
        ["class", "analytic worst", "simulated worst"],
        [(cls.label, format_ms(result.analytic_worst_per_class.get(cls)),
          format_ms(result.simulated_worst_per_class.get(cls)))
         for cls in PriorityClass])

    # The case-study traffic fits on the 1553B bus (the paper's premise)...
    assert result.feasible
    assert result.simulated_overruns == 0
    # ... and loads it heavily, which motivates the migration.
    assert result.max_utilization > 0.5
    assert result.simulated_bus_utilization > 0.5
    # Periodic traffic is served within its minor frame; urgent sporadic
    # traffic cannot be guaranteed 3 ms by 20 ms polling.
    assert result.analytic_worst_per_class[PriorityClass.PERIODIC] <= \
        units.ms(20)
    assert result.analytic_worst_per_class[PriorityClass.URGENT] > units.ms(3)
    # The analysis dominates the simulation for every guaranteed class.
    for cls in (PriorityClass.URGENT, PriorityClass.PERIODIC,
                PriorityClass.SPORADIC):
        assert result.simulated_worst_per_class[cls] <= \
            result.analytic_worst_per_class[cls] + 1e-6
