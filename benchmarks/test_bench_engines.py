"""Bound engines — cross-engine throughput and default-path overhead.

Two regressions this PR must never introduce:

1. running **every** engine (``--engine all``) over a campaign must stay
   batch-friendly — a cells/s floor over the cross-engine rows,
2. the default (``calculus``-only) campaign path must stay at pre-engine
   throughput — the engine hook is a single tuple comparison per
   scenario, pinned to within 5% of a runner with the hook disabled.
"""

import time

from repro.analysis.engines import engine_names
from repro.campaigns import CampaignRunner, get, select

#: Timing loops; the runs are sub-second so best-of keeps noise out.
ROUNDS = 5

#: Cross-engine throughput floor, in engine-verdict rows per second.
#: Every row is one (scenario, engine, policy, class) bound; a cold
#: container measures ~40 rows/s (the x8 ladder rung dominates — 512
#: routed flows under the iterative engines), so the floor sits ~5x
#: below that to absorb CI noise.
ENGINE_ROWS_PER_S_FLOOR = 8.0


def _scenarios():
    """The benchmark's campaign: the ladder plus two routed fabrics."""
    return list(select("ladder")) + [get("graph-diamond"),
                                     get("graph-ring")]


def _time_run(make_runner, scenarios) -> tuple[float, object]:
    """Best-of-ROUNDS wall-clock seconds for one campaign run."""
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        runner = make_runner()
        started = time.perf_counter()
        result = runner.run(scenarios)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_bench_engines(benchmark, report, monkeypatch):
    scenarios = _scenarios()
    all_engines = tuple(engine_names())

    # 1. every engine over every cell.
    all_time, all_result = _time_run(
        lambda: CampaignRunner(engines=all_engines), scenarios)
    engine_rows = all_result.engine_rows()
    engine_rate = len(engine_rows) / all_time

    # 2. the default path, engines machinery live (the shipped code) ...
    default_time, default_result = _time_run(CampaignRunner, scenarios)
    # ... vs the pre-engine baseline: the identical runner with the
    # engine hook compiled out, so the delta is exactly the hook's cost.
    monkeypatch.setattr(CampaignRunner, "_engine_rows",
                        lambda self, scenario: [])
    baseline_time, baseline_result = _time_run(CampaignRunner, scenarios)
    monkeypatch.undo()
    overhead = default_time / baseline_time - 1.0

    benchmark.pedantic(
        lambda: CampaignRunner(engines=all_engines).run(scenarios),
        rounds=3, iterations=1)

    report(
        "engines", "Bound engines: cross-engine campaign throughput",
        ["mode", "scenarios", "engine rows", "best run", "rows/s"],
        [("--engine all", len(scenarios), len(engine_rows),
          f"{all_time * 1e3:.2f} ms", f"{engine_rate:,.0f}"),
         ("default (calculus)", len(scenarios), 0,
          f"{default_time * 1e3:.2f} ms", "-"),
         ("engine hook disabled", len(scenarios), 0,
          f"{baseline_time * 1e3:.2f} ms",
          f"overhead {overhead * 100:+.1f}%")])

    # The cross-engine run covers every engine on every scenario ...
    assert {row.engine for row in engine_rows} == set(all_engines)
    # ... at batch-friendly throughput.
    assert engine_rate >= ENGINE_ROWS_PER_S_FLOOR, (
        f"cross-engine throughput {engine_rate:,.0f} rows/s fell below "
        f"the {ENGINE_ROWS_PER_S_FLOOR:,.0f} rows/s floor")
    # The default path computes no engine rows and stays bit-identical
    # to the pre-engine runner's output ...
    assert default_result.engine_rows() == []
    assert [str(row) for row in default_result.rows()] == \
        [str(row) for row in baseline_result.rows()]
    # ... within 5% of its throughput (the hook is one tuple compare).
    assert overhead <= 0.05, (
        f"default-engine campaign is {overhead * 100:.1f}% slower than "
        f"the pre-engine path (allowed: 5%)")
