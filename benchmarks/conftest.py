"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one exhibit of the paper (see DESIGN.md's
experiment index) on the seeded synthetic case study, prints the rows the
paper reports and writes them to ``benchmarks/results/`` as both a text
table and a CSV file, so they can be inspected or re-plotted afterwards.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running the benchmarks from a source checkout even when the package
# has not been pip-installed (the offline environment lacks the ``wheel``
# package needed by PEP 517 editable installs).
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import os

import pytest

from repro import MessageSet
from repro.reporting import render_table, write_csv
from repro.store import STORE_DIR_ENV
from repro.workloads import RealCaseParameters, generate_real_case


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_store(tmp_path_factory) -> None:
    """Keep benchmark runs from touching the checkout's result store."""
    os.environ[STORE_DIR_ENV] = str(tmp_path_factory.mktemp("repro-store"))

#: Where the benchmark harness drops its tables and CSV files.
RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def real_case() -> MessageSet:
    """The default seeded case study (the paper's 'real traffic' stand-in)."""
    return generate_real_case()


@pytest.fixture(scope="session")
def small_case() -> MessageSet:
    """A reduced case study for the simulation-heavy experiments."""
    return generate_real_case(
        RealCaseParameters(station_count=8), seed=3, name="small-case")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_values(results_dir):
    """Return a helper merging ``bench.*`` keys into BENCH_values.json.

    Several benchmarks contribute docs-facing numbers; each merges its
    own keys so running one benchmark never drops another's values.
    """
    import json

    path = results_dir / "BENCH_values.json"

    def _merge(values: dict) -> None:
        existing = {}
        if path.is_file():
            try:
                existing = json.loads(path.read_text(encoding="utf-8"))
            except ValueError:
                existing = {}
        existing.update(values)
        path.write_text(
            json.dumps(existing, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    return _merge


@pytest.fixture(scope="session")
def report(results_dir):
    """Return a helper that prints a table and persists it under results/."""

    def _report(name: str, title: str, headers, rows) -> None:
        table = render_table(headers, rows, title=title)
        print()
        print(table)
        (results_dir / f"{name}.txt").write_text(table)
        write_csv(results_dir / f"{name}.csv", headers, rows)

    return _report
