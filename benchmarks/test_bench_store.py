"""Result-store acceptance: a warm ``repro report`` re-run is near-free.

The store keys every experiment by its spec plus the ``reports``
code-version token, so an unchanged-code re-run must perform **zero**
experiment recomputations and finish at least ``SPEEDUP_FLOOR`` times
faster than the cold run — while producing a byte-identical artifact
tree.  The measured cold/warm timings land in
``benchmarks/results/store_warm.{csv,txt}`` and the docs-facing numbers
in ``benchmarks/results/BENCH_values.json`` (the committed file
``tools/docgen.py`` substitutes into README.md).  The perf-smoke CI job
runs this file, so a regression that silently turns warm runs back into
cold ones fails the build.
"""

from __future__ import annotations

import time

from repro.reports import ReportPipeline
from repro.store import ResultStore

#: Acceptance floor: the warm run must be at least this much faster.
SPEEDUP_FLOOR = 10.0


def test_bench_store_warm_report(report, results_dir, bench_values,
                                 tmp_path):
    store_root = tmp_path / "store"

    started = time.perf_counter()
    cold_pipeline = ReportPipeline(tmp_path / "cold",
                                   store=ResultStore(store_root))
    cold_run = cold_pipeline.run()
    cold = time.perf_counter() - started
    assert cold_pipeline.last_cached == []

    started = time.perf_counter()
    warm_pipeline = ReportPipeline(tmp_path / "warm",
                                   store=ResultStore(store_root))
    warm_run = warm_pipeline.run()
    warm = time.perf_counter() - started

    # Zero recomputations on the warm run...
    assert warm_pipeline.last_computed == []
    assert len(warm_pipeline.last_cached) == len(cold_run.experiments)
    # ...and a byte-identical artifact tree.
    assert warm_run.files == cold_run.files
    for relative in cold_run.files:
        assert (tmp_path / "warm" / relative).read_bytes() \
            == (tmp_path / "cold" / relative).read_bytes(), relative

    speedup = cold / warm
    hits = warm_pipeline.store.stats.hits
    hit_rate = hits / max(1, warm_pipeline.store.stats.lookups)
    report(
        "store_warm", "Result store: cold vs warm full report run",
        ["metric", "value"],
        [("experiments", len(cold_run.experiments)),
         ("artifacts", len(cold_run.files)),
         ("cold_s", f"{cold:.3f}"),
         ("warm_s", f"{warm:.3f}"),
         ("speedup", f"{speedup:.0f}x"),
         ("warm_recomputations", len(warm_pipeline.last_computed)),
         ("warm_hit_rate", f"{hit_rate * 100:.0f} %"),
         ("floor", f"{SPEEDUP_FLOOR:.0f}x")])

    # The docs-facing numbers (README spans reference these keys).
    bench_values({
        "bench.store-cold-s": f"{cold:.2f} s",
        "bench.store-warm-ms": f"{warm * 1e3:.0f} ms",
        "bench.store-warm-speedup": f"{speedup:.0f}x",
        "bench.store-warm-recomputations": str(
            len(warm_pipeline.last_computed)),
    })

    assert speedup >= SPEEDUP_FLOOR, (
        f"warm report run only {speedup:.1f}x faster than cold "
        f"(floor {SPEEDUP_FLOOR}x) — the result store has regressed")
