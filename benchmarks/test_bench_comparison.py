"""E4 — MIL-STD-1553B vs switched Ethernet, per priority class.

The side-by-side worst-case response times behind the paper's motivation:
1553B handles the periodic traffic deterministically but cannot give 3 ms
guarantees to asynchronous urgent messages with 20 ms polling, plain FCFS
Ethernet wastes its bandwidth advantage on the urgent class, and the
prioritised Ethernet meets every constraint with a comfortable margin.
"""

from repro import PriorityClass
from repro.analysis import technology_comparison
from repro.reporting import format_ms, yes_no


def test_bench_comparison(benchmark, real_case, report):
    rows = benchmark(technology_comparison, real_case)

    report(
        "technology_comparison",
        "Worst-case response times: 1553B vs Ethernet FCFS vs Ethernet priority",
        ["class", "constraint", "1553B", "ok", "Ethernet FCFS", "ok",
         "Ethernet priority", "ok", "speed-up vs 1553B"],
        [(row.priority.label, format_ms(row.deadline),
          format_ms(row.milstd1553_bound), yes_no(row.milstd1553_ok),
          format_ms(row.ethernet_fcfs_bound), yes_no(row.fcfs_ok),
          format_ms(row.ethernet_priority_bound), yes_no(row.priority_ok),
          f"{row.speedup_over_1553:.1f}x")
         for row in rows])

    by_class = {row.priority: row for row in rows}
    urgent = by_class[PriorityClass.URGENT]
    periodic = by_class[PriorityClass.PERIODIC]
    # Who wins where: periodic is fine everywhere; urgent needs priorities.
    assert periodic.milstd1553_ok and periodic.fcfs_ok and periodic.priority_ok
    assert not urgent.milstd1553_ok
    assert not urgent.fcfs_ok
    assert urgent.priority_ok
    # Prioritised Ethernet dominates the bus for every class.
    assert all(row.ethernet_priority_bound < row.milstd1553_bound
               for row in rows)
