"""E2 — FCFS constraint violations vs link capacity.

Quantifies the paper's observation that raw bandwidth (10 Mbps vs the 1 Mbps
of MIL-STD-1553B) is not sufficient: with plain FCFS multiplexing the urgent
class is violated at 10 Mbps, while the strict-priority scheme is clean at
every capacity, and Fast Ethernet (100 Mbps) would mask the problem.
"""

from repro import PriorityClass, units
from repro.analysis import fcfs_violation_table
from repro.reporting import format_ms


def test_bench_fcfs_violations(benchmark, real_case, report):
    rows = benchmark(fcfs_violation_table, real_case)

    report(
        "fcfs_violations", "Constraint violations vs link capacity",
        ["capacity", "class", "messages", "constraint", "FCFS bound",
         "FCFS violated msgs", "priority bound", "priority violated msgs"],
        [(f"{row.capacity / 1e6:.0f} Mbps", row.priority.name,
          row.message_count, format_ms(row.deadline),
          format_ms(row.fcfs_bound), row.fcfs_violated_messages,
          format_ms(row.priority_bound), row.priority_violated_messages)
         for row in rows])

    at_10 = [row for row in rows if row.capacity == units.mbps(10)]
    at_100 = [row for row in rows if row.capacity == units.mbps(100)]
    # FCFS at 10 Mbps violates exactly the urgent class.
    assert {row.priority for row in at_10 if row.fcfs_violated_messages} == \
        {PriorityClass.URGENT}
    # Priorities never violate anything.
    assert all(row.priority_violated_messages == 0 for row in rows)
    # At 100 Mbps even FCFS is clean (bandwidth would mask the problem).
    assert all(row.fcfs_violated_messages == 0 for row in at_100)
