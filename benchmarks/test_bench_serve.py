"""Admission-service acceptance: a warm server answers fast and bounded.

Starts one in-process :class:`~repro.serve.server.AdmissionServer` over
the paper's warm 16-station case study and measures three paths:

* the admission boundary (``submit``: queue + watchdog + engine), which
  must sustain at least :data:`QUERY_FLOOR_QPS` queries/s with a worker
  p99 under :data:`P99_FLOOR_S` — the service's acceptance criterion;
* the full HTTP round trip from concurrent stdlib clients (reported,
  with a conservative floor so slow CI machines don't flake);
* the mutation path (admit+remove pairs through the incremental
  engine), whose per-class O(1) updates keep it in the same ballpark
  as pure queries.

The measured numbers land in ``benchmarks/results/serve_throughput.
{csv,txt}`` and the docs-facing keys in ``BENCH_values.json`` (the
committed file ``tools/docgen.py`` substitutes into README.md).
"""

from __future__ import annotations

import threading
import time

from repro import units
from repro.campaigns.scenario import Scenario, TopologySpec, WorkloadSpec
from repro.serve import (
    AdmissionEngine,
    AdmissionServer,
    ServeClient,
    ServeConfig,
)

#: Acceptance floor at the admission boundary (queries per second).
QUERY_FLOOR_QPS = 1000.0
#: Worker-side p99 latency ceiling (seconds) — well under the default
#: 0.25 s deadline budget, so the watchdog never fires on a warm server.
P99_FLOOR_S = 0.05
#: Conservative floor for the concurrent HTTP round trip.
HTTP_FLOOR_QPS = 250.0

#: Queries fired at the submit path.
SUBMIT_QUERIES = 3000
#: Queries per HTTP client thread, and the thread count.
HTTP_QUERIES, HTTP_THREADS = 400, 4
#: Admit+remove pairs through the incremental engine.
MUTATION_PAIRS = 300

DEADLINE = 0.25


def _flow(index: int) -> dict:
    return {"name": f"bench-flow-{index}", "kind": "sporadic",
            "period": 1.0, "size": 100.0, "source": "station-00",
            "destination": "station-01", "deadline": None}


def test_bench_serve_throughput(report, bench_values):
    scenario = Scenario(
        name="bench-serve", description="admission-service benchmark",
        workload=WorkloadSpec(station_count=16, seed=7),
        topology=TopologySpec("single-switch-star"),
        capacity=units.mbps(10.0), technology_delay=units.us(16.0),
        policies=("strict-priority",))
    engine = AdmissionEngine(scenario, "strict-priority")
    server = AdmissionServer(engine, ServeConfig(port=0, deadline=DEADLINE))
    server.start()
    try:
        base = f"http://127.0.0.1:{server.port}"
        ServeClient(base).wait_ready()

        # -- admission boundary: queue + watchdog + engine ----------------
        started = time.perf_counter()
        for _ in range(SUBMIT_QUERIES):
            status, _, _ = server.submit("check", None)
            assert status == 200
        submit_qps = SUBMIT_QUERIES / (time.perf_counter() - started)
        submit_p99 = server.p99_latency()

        # -- concurrent HTTP round trip -----------------------------------
        def _client_loop() -> None:
            client = ServeClient(base)
            for _ in range(HTTP_QUERIES):
                status, _, _ = client.check()
                assert status == 200

        threads = [threading.Thread(target=_client_loop)
                   for _ in range(HTTP_THREADS)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        http_qps = HTTP_QUERIES * HTTP_THREADS \
            / (time.perf_counter() - started)

        # -- mutation path: incremental admit + remove pairs --------------
        started = time.perf_counter()
        for index in range(MUTATION_PAIRS):
            status, body, _ = server.submit("admit", _flow(index),
                                            force=True)
            assert status == 200 and body["applied"], body
            status, body, _ = server.submit("remove",
                                            f"bench-flow-{index}")
            assert status == 200 and body["applied"], body
        mutation_ops = 2 * MUTATION_PAIRS \
            / (time.perf_counter() - started)
        worker_p99 = server.p99_latency()
        stats = server.stats_payload()
        assert stats["degraded"] == 0, "a warm server must never degrade"
        assert stats["shed"] == 0, "a warm server must never shed"
    finally:
        assert server.drain(timeout=30.0)

    report(
        "serve_throughput",
        "Admission service: warm-server throughput and latency",
        ["metric", "value"],
        [("submit_qps", f"{submit_qps:.0f}"),
         ("http_qps", f"{http_qps:.0f}"),
         ("mutation_ops_per_s", f"{mutation_ops:.0f}"),
         ("worker_p99_ms", f"{worker_p99 * 1e3:.3f}"),
         ("deadline_budget_ms", f"{DEADLINE * 1e3:.0f}"),
         ("incremental_hits", engine.incremental_hits),
         ("full_recomputes", engine.full_recomputes),
         ("query_floor_qps", f"{QUERY_FLOOR_QPS:.0f}"),
         ("p99_floor_ms", f"{P99_FLOOR_S * 1e3:.0f}")])

    bench_values({
        "bench.serve-qps": f"{submit_qps:,.0f}",
        "bench.serve-http-qps": f"{http_qps:,.0f}",
        "bench.serve-mutations-per-s": f"{mutation_ops:,.0f}",
        "bench.serve-p99-ms": f"{worker_p99 * 1e3:.2f} ms",
    })

    assert submit_qps >= QUERY_FLOOR_QPS, (
        f"warm server sustained only {submit_qps:.0f} queries/s at the "
        f"admission boundary (floor {QUERY_FLOOR_QPS:.0f}) — the serve "
        f"path has regressed")
    assert submit_p99 <= P99_FLOOR_S and worker_p99 <= P99_FLOOR_S, (
        f"worker p99 {max(submit_p99, worker_p99) * 1e3:.1f} ms over the "
        f"{P99_FLOOR_S * 1e3:.0f} ms floor — requests are at risk of "
        f"degrading under the {DEADLINE:g}s budget")
    assert http_qps >= HTTP_FLOOR_QPS, (
        f"concurrent HTTP round trip sustained only {http_qps:.0f} "
        f"queries/s (floor {HTTP_FLOOR_QPS:.0f})")
