"""Perf regression guard: the scalability sweep to 64x traffic.

The vectorised analytic paths (incremental 1553B minor-frame packing, the
struct-of-arrays aggregation backend and arithmetic station replication)
turned the 64x sweep from ~36 s into well under a second.  This benchmark
records the wall time and the speedup over the seed implementation into
``benchmarks/results/perf_scaling.{csv,txt}`` and fails when the sweep
regresses past a deliberately generous threshold, so CI smoke runs catch
an accidental return of the quadratic paths without flaking on slow
machines.
"""

from __future__ import annotations

import time

from repro.analysis.scalability import scalability_sweep

#: The ladder of the acceptance criterion.
SCALES = (1, 2, 4, 8, 16, 32, 64)

#: Wall time of the seed implementation on the same ladder (measured on the
#: development container before the vectorisation), kept as the fixed
#: "before" of the recorded ratio.
SEED_WALL_TIME_S = 36.0

#: Generous regression threshold for CI smoke runs: an order of magnitude
#: above the expected wall time, far below the seed's.
THRESHOLD_S = 10.0


def test_bench_perf_scaling(real_case, report):
    started = time.perf_counter()
    rows = scalability_sweep(real_case, scales=SCALES)
    elapsed = time.perf_counter() - started

    report(
        "perf_scaling", "Scalability sweep to 64x: wall time vs the seed",
        ["metric", "value"],
        [("scales", "x".join(str(s) for s in SCALES)),
         ("messages_at_64x", rows[-1].message_count),
         ("wall_time_s", f"{elapsed:.3f}"),
         ("seed_wall_time_s", f"{SEED_WALL_TIME_S:.1f}"),
         ("speedup", f"{SEED_WALL_TIME_S / elapsed:.0f}x"),
         ("threshold_s", f"{THRESHOLD_S:.1f}")])

    # The sweep's shape must survive the fast paths.
    assert rows[0].milstd1553_feasible
    assert not rows[-1].milstd1553_feasible
    assert rows[-1].message_count == 64 * len(real_case)
    assert elapsed < THRESHOLD_S, (
        f"scalability sweep took {elapsed:.2f}s (threshold {THRESHOLD_S}s) "
        f"— a scale-sensitive path has regressed")
