"""Executor acceptance: fault tolerance must be (almost) free.

The fault-tolerant :class:`repro.exec.ParallelExecutor` replaced the
bare ``ProcessPoolExecutor`` fan-out in every subsystem, so its
bookkeeping (sliding dispatch window, watchdog arming, fault-plan
threading, retry accounting) sits on the hot path of all ``--jobs N``
runs.  This benchmark maps the same 64-cell CPU-bound sweep through a
raw pool and through the executor with identical worker counts and
asserts the executor stays within ``OVERHEAD_FLOOR`` of raw (plus a
small absolute slack absorbing pool-startup jitter).  The perf-smoke CI
job runs this file, so an accidental O(n) stall in the dispatch loop
fails the build.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor

from repro.exec import ParallelExecutor

#: Relative overhead budget of the executor vs the raw pool.
OVERHEAD_FLOOR = 1.05

#: Absolute slack in seconds (pool startup / scheduler jitter).
ABSOLUTE_SLACK = 0.25

#: Cells in the sweep and worker processes driving them.
CELLS = 64
JOBS = 4


def _spin(task: int) -> int:
    """~5 ms of deterministic CPU-bound work per cell."""
    total = task
    for i in range(120_000):
        total = (total * 1103515245 + 12345) % 2**31
    return total


def _run_raw() -> tuple[float, list[int]]:
    started = time.perf_counter()
    with ProcessPoolExecutor(max_workers=JOBS) as pool:
        results = list(pool.map(_spin, range(CELLS)))
    return time.perf_counter() - started, results


def _run_executor() -> tuple[float, list[int]]:
    started = time.perf_counter()
    report = ParallelExecutor(jobs=JOBS).map(_spin, range(CELLS))
    assert report.ok
    return time.perf_counter() - started, report.ordered_results()


def test_bench_exec_overhead(report, bench_values):
    # Warm both paths once (imports, fork machinery), then measure.
    _run_raw()
    _run_executor()
    raw, raw_results = _run_raw()
    managed, managed_results = _run_executor()
    assert managed_results == raw_results

    overhead = managed / raw
    report(
        "exec_overhead", "Fault-tolerant executor vs raw process pool",
        ["metric", "value"],
        [("cells", CELLS),
         ("jobs", JOBS),
         ("raw_pool_s", f"{raw:.3f}"),
         ("executor_s", f"{managed:.3f}"),
         ("overhead", f"{(overhead - 1) * 100:+.1f} %"),
         ("floor", f"{(OVERHEAD_FLOOR - 1) * 100:.0f} % + "
                   f"{ABSOLUTE_SLACK:.2f} s slack")])
    bench_values({
        "bench.exec-overhead-pct": f"{(overhead - 1) * 100:.1f} %",
        "bench.exec-cells": str(CELLS),
    })

    assert managed <= raw * OVERHEAD_FLOOR + ABSOLUTE_SLACK, (
        f"executor took {managed:.3f}s vs raw pool {raw:.3f}s "
        f"(> {OVERHEAD_FLOOR}x + {ABSOLUTE_SLACK}s) — the fault-tolerance "
        f"bookkeeping has regressed onto the hot path")
