"""E5 — analytic bounds vs simulated worst-case delays (validation).

Not an exhibit of the paper, but required for a credible reproduction: the
frame-level simulation of the switched network under the adversarial
synchronised-release scenario must never exceed the network-calculus bounds,
and should come reasonably close to them (otherwise the bounds, or the
simulator, would be suspect).
"""

from repro import PriorityClass, units
from repro.analysis import validate_bounds
from repro.reporting import format_ms, yes_no


def run_validation(small_case):
    return validate_bounds(small_case, simulation_duration=units.ms(320))


def test_bench_bound_vs_sim(benchmark, small_case, report):
    rows = benchmark.pedantic(run_validation, args=(small_case,), rounds=3,
                              iterations=1)

    report(
        "bound_vs_simulation",
        "Analytic bound vs simulated worst delay (synchronised releases)",
        ["policy", "class", "analytic bound", "simulated worst",
         "simulated mean", "tightness", "bound holds"],
        [(row.policy, row.priority.name, format_ms(row.analytic_bound),
          format_ms(row.simulated_worst), format_ms(row.simulated_mean),
          f"{row.tightness * 100:.0f} %", yes_no(row.bound_holds))
         for row in rows])

    # The fundamental soundness property: every bound dominates.
    assert rows
    assert all(row.bound_holds for row in rows)
    # The adversarial scenario is not trivially loose.
    assert any(row.tightness > 0.25 for row in rows)
    # The priority policy improves the urgent class in both worlds.
    fcfs_urgent = next(r for r in rows if r.policy == "fcfs"
                       and r.priority is PriorityClass.URGENT)
    sp_urgent = next(r for r in rows if r.policy == "strict-priority"
                     and r.priority is PriorityClass.URGENT)
    assert sp_urgent.analytic_bound < fcfs_urgent.analytic_bound
    assert sp_urgent.simulated_worst <= fcfs_urgent.simulated_worst + 1e-9
