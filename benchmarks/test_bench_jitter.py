"""E6 — delivery jitter (the paper's future-work item).

Per-stream peak-to-peak delivery jitter per priority class under the 1553B
cyclic bus, FCFS switched Ethernet and prioritised switched Ethernet, using
the staggered-release scenario.  The expected shape: 1553B periodic jitter is
essentially zero (rigid schedule), its sporadic jitter is dominated by the
20 ms polling, and the switched network keeps jitter in the tens of
microseconds for every class.
"""

from repro import PriorityClass, units
from repro.analysis import jitter_comparison
from repro.reporting import format_ms


def run_jitter(small_case):
    return jitter_comparison(small_case, duration=units.ms(320))


def test_bench_jitter(benchmark, small_case, report):
    rows = benchmark.pedantic(run_jitter, args=(small_case,), rounds=3,
                              iterations=1)

    report(
        "jitter", "Per-stream delivery jitter per class",
        ["technology", "class", "worst jitter", "mean jitter",
         "worst latency", "streams"],
        [(row.technology, row.priority.name, format_ms(row.worst_jitter),
          format_ms(row.mean_jitter), format_ms(row.worst_latency),
          row.streams)
         for row in rows])

    def worst(technology, priority):
        return next(r.worst_jitter for r in rows
                    if r.technology == technology and r.priority is priority)

    # 1553B periodic jitter is inherently low (the paper's remark)...
    assert worst("mil-std-1553b", PriorityClass.PERIODIC) <= units.us(1)
    # ... but its polled sporadic traffic jitters by whole minor frames.
    assert worst("mil-std-1553b", PriorityClass.URGENT) > units.ms(1)
    # The switched network keeps every class's jitter far below that.
    for technology in ("ethernet-fcfs", "ethernet-priority"):
        for row in rows:
            if row.technology == technology:
                assert row.worst_jitter < units.ms(2)
