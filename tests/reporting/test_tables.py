"""ASCII tables, markdown tables and CSV export."""

import csv
import math

import pytest

from repro.reporting import (
    format_bound,
    render_markdown_table,
    render_table,
    write_csv,
)


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        output = render_table(["name", "value"], [["alpha", 1], ["beta", 22]])
        assert "name" in output
        assert "alpha" in output
        assert "22" in output

    def test_columns_are_aligned(self):
        output = render_table(["h"], [["short"], ["a-much-longer-cell"]])
        lines = output.splitlines()
        data_lines = lines[2:]
        assert len({len(line) for line in data_lines if line.strip()}) <= 2

    def test_title_is_underlined(self):
        output = render_table(["h"], [["x"]], title="My table")
        lines = output.splitlines()
        assert lines[0] == "My table"
        assert lines[1] == "=" * len("My table")

    def test_mismatched_row_length_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_ends_with_a_newline(self):
        assert render_table(["a"], [["x"]]).endswith("\n")

    def test_empty_rows_still_renders_headers(self):
        output = render_table(["a", "b"], [])
        assert "a" in output and "b" in output

    def test_unbounded_cells_render_like_any_string(self):
        # Overloaded classes flow through as pre-formatted 'unbounded'
        # cells (format_bound); the table must align them, not choke.
        output = render_table(["class", "bound"],
                              [["urgent", format_bound(math.inf)],
                               ["periodic", format_bound(0.003)]])
        assert "unbounded" in output
        lines = [line for line in output.splitlines() if line.strip()]
        assert len({len(line) for line in lines[:1] + lines[2:]}) == 1


class TestRenderMarkdownTable:
    def test_structure(self):
        output = render_markdown_table(["a", "b"], [["1", "2"]],
                                       title="T")
        lines = output.splitlines()
        assert lines[0] == "### T"
        assert lines[2] == "| a | b |"
        assert lines[3] == "| --- | --- |"
        assert lines[4] == "| 1 | 2 |"

    def test_empty_rows_render_header_and_separator_only(self):
        output = render_markdown_table(["a", "b"], [])
        lines = output.splitlines()
        assert lines == ["| a | b |", "| --- | --- |"]

    def test_mismatched_row_length_rejected(self):
        with pytest.raises(ValueError):
            render_markdown_table(["a", "b"], [["only-one"]])

    def test_ends_with_a_newline(self):
        assert render_markdown_table(["a"], [["x"]]).endswith("\n")


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "table.csv"
        write_csv(path, ["name", "value"], [["alpha", 1], ["beta", 2]])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["name", "value"]
        assert rows[1] == ["alpha", "1"]
        assert len(rows) == 3
