"""Formatting helpers."""

import math

from repro import units
from repro.reporting import (
    format_bound,
    format_bytes,
    format_ms,
    format_rate,
    yes_no,
)


class TestFormatMs:
    def test_milliseconds(self):
        assert format_ms(units.ms(3)) == "3.000 ms"

    def test_digits(self):
        assert format_ms(units.ms(3.14159), digits=1) == "3.1 ms"

    def test_none_is_a_dash(self):
        assert format_ms(None) == "-"

    def test_nan_is_a_dash(self):
        assert format_ms(float("nan")) == "-"


class TestFormatBound:
    def test_finite_bound_matches_format_ms(self):
        assert format_bound(units.ms(3)) == format_ms(units.ms(3))

    def test_infinite_bound_is_unbounded(self):
        # The overload convention of PR 2: bound=inf, stable=False.
        assert format_bound(math.inf) == "unbounded"

    def test_none_and_nan_are_dashes(self):
        assert format_bound(None) == "-"
        assert format_bound(float("nan")) == "-"

    def test_digits_forwarded(self):
        assert format_bound(units.ms(3.14159), digits=1) == "3.1 ms"


class TestFormatBytes:
    def test_bits_become_whole_bytes(self):
        assert format_bytes(8848) == "1106 B"

    def test_infinite_backlog_is_unbounded(self):
        assert format_bytes(math.inf) == "unbounded"

    def test_none_and_nan_are_dashes(self):
        assert format_bytes(None) == "-"
        assert format_bytes(float("nan")) == "-"


class TestFormatRate:
    def test_megabits(self):
        assert format_rate(units.mbps(10)) == "10.00 Mbps"

    def test_kilobits(self):
        assert format_rate(2500) == "2.5 kbps"

    def test_bits(self):
        assert format_rate(500) == "500 bps"

    def test_unit_boundaries(self):
        assert format_rate(1e6) == "1.00 Mbps"
        assert format_rate(1e3) == "1.0 kbps"
        assert format_rate(999) == "999 bps"


class TestYesNo:
    def test_yes(self):
        assert yes_no(True) == "yes"

    def test_no_is_shouted(self):
        assert yes_no(False) == "NO"
