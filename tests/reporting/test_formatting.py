"""Formatting helpers."""

from repro import units
from repro.reporting import format_ms, format_rate, yes_no


class TestFormatMs:
    def test_milliseconds(self):
        assert format_ms(units.ms(3)) == "3.000 ms"

    def test_digits(self):
        assert format_ms(units.ms(3.14159), digits=1) == "3.1 ms"

    def test_none_is_a_dash(self):
        assert format_ms(None) == "-"

    def test_nan_is_a_dash(self):
        assert format_ms(float("nan")) == "-"


class TestFormatRate:
    def test_megabits(self):
        assert format_rate(units.mbps(10)) == "10.00 Mbps"

    def test_kilobits(self):
        assert format_rate(2500) == "2.5 kbps"

    def test_bits(self):
        assert format_rate(500) == "500 bps"


class TestYesNo:
    def test_yes(self):
        assert yes_no(True) == "yes"

    def test_no_is_shouted(self):
        assert yes_no(False) == "NO"
