"""Text and SVG bar charts."""

import math

import pytest

from repro.reporting import render_bar_chart, render_svg_bar_chart


class TestRenderBarChart:
    def test_bars_scale_with_values(self):
        output = render_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = output.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_labels_and_values_present(self):
        output = render_bar_chart(["urgent"], [3.3], unit="ms")
        assert "urgent" in output
        assert "3.3 ms" in output

    def test_title(self):
        output = render_bar_chart(["a"], [1.0], title="Figure 1")
        assert output.splitlines()[0] == "Figure 1"

    def test_marker_rendered(self):
        output = render_bar_chart(["a"], [2.0], width=20, markers={0: 1.0})
        assert "|" in output.splitlines()[0]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            render_bar_chart(["a"], [1.0, 2.0])

    def test_empty_chart(self):
        assert "empty" in render_bar_chart([], [])

    def test_zero_values_do_not_crash(self):
        output = render_bar_chart(["a", "b"], [0.0, 0.0])
        assert "a" in output

    def test_infinite_value_draws_a_clipped_unbounded_bar(self):
        # PR 2's overload convention: an unstable class reports bound=inf
        # and the chart must degrade gracefully, not crash on the scale.
        output = render_bar_chart(["stable", "overload"],
                                  [1.0, math.inf], unit="ms", width=10)
        lines = output.splitlines()
        assert "unbounded" in lines[1]
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 10  # scaled to the largest finite

    def test_all_infinite_values_still_render(self):
        output = render_bar_chart(["a"], [math.inf])
        assert "unbounded" in output

    def test_infinite_marker_is_ignored(self):
        output = render_bar_chart(["a"], [1.0], width=10,
                                  markers={0: math.inf})
        assert "|" not in output


class TestRenderSvgBarChart:
    def test_svg_structure_labels_and_values(self):
        svg = render_svg_bar_chart(["urgent", "periodic"], [1.5, 3.0],
                                   unit="ms", title="Bounds")
        assert svg.startswith("<svg ")
        assert svg.rstrip().endswith("</svg>")
        assert "urgent" in svg and "periodic" in svg
        assert "1.5 ms" in svg and "3 ms" in svg
        assert "Bounds" in svg

    def test_bars_scale_with_values(self):
        svg = render_svg_bar_chart(["a", "b"], [1.0, 2.0])
        widths = [int(part.split('"')[0])
                  for part in svg.split('width="')[2:4]]
        assert widths[0] * 2 == widths[1]

    def test_infinite_value_is_annotated_unbounded(self):
        svg = render_svg_bar_chart(["x"], [math.inf], unit="ms")
        assert "unbounded" in svg
        assert 'class="bar-unbounded"' in svg

    def test_markers_render_as_lines(self):
        svg = render_svg_bar_chart(["a"], [2.0], markers={0: 1.0})
        assert 'class="marker"' in svg

    def test_labels_are_escaped(self):
        svg = render_svg_bar_chart(["a<b&c"], [1.0])
        assert "a&lt;b&amp;c" in svg
        assert "a<b&c" not in svg

    def test_empty_chart_is_valid_svg(self):
        svg = render_svg_bar_chart([], [])
        assert svg.startswith("<svg ")
        assert "(empty chart)" in svg

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            render_svg_bar_chart(["a"], [1.0, 2.0])

    def test_output_is_deterministic(self):
        first = render_svg_bar_chart(["a", "b"], [1.0, math.inf],
                                     unit="ms", markers={0: 2.0})
        second = render_svg_bar_chart(["a", "b"], [1.0, math.inf],
                                      unit="ms", markers={0: 2.0})
        assert first == second
