"""Text bar charts."""

import pytest

from repro.reporting import render_bar_chart


class TestRenderBarChart:
    def test_bars_scale_with_values(self):
        output = render_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = output.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_labels_and_values_present(self):
        output = render_bar_chart(["urgent"], [3.3], unit="ms")
        assert "urgent" in output
        assert "3.3 ms" in output

    def test_title(self):
        output = render_bar_chart(["a"], [1.0], title="Figure 1")
        assert output.splitlines()[0] == "Figure 1"

    def test_marker_rendered(self):
        output = render_bar_chart(["a"], [2.0], width=20, markers={0: 1.0})
        assert "|" in output.splitlines()[0]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            render_bar_chart(["a"], [1.0, 2.0])

    def test_empty_chart(self):
        assert "empty" in render_bar_chart([], [])

    def test_zero_values_do_not_crash(self):
        output = render_bar_chart(["a", "b"], [0.0, 0.0])
        assert "a" in output
