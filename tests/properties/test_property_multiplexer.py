"""Property-based tests of the paper's multiplexer bounds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    FcfsMultiplexerAnalysis,
    Message,
    PriorityClass,
    StrictPriorityMultiplexerAnalysis,
    units,
)

CAPACITY = units.mbps(10)


@st.composite
def message_sets(draw, min_size=1, max_size=12):
    """Random message populations that keep the multiplexer stable."""
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    messages = []
    for index in range(count):
        kind = draw(st.sampled_from(["periodic", "urgent", "sporadic",
                                     "background"]))
        words = draw(st.integers(min_value=1, max_value=64))
        period_ms = draw(st.sampled_from([20, 40, 80, 160]))
        size = units.words1553(words)
        if kind == "periodic":
            messages.append(Message.periodic(
                f"m{index}", period=units.ms(period_ms), size=size,
                source=f"s{index}", destination="sink"))
        elif kind == "urgent":
            messages.append(Message.sporadic(
                f"m{index}", min_interarrival=units.ms(20), size=size,
                source=f"s{index}", destination="sink",
                deadline=units.ms(3)))
        elif kind == "sporadic":
            messages.append(Message.sporadic(
                f"m{index}", min_interarrival=units.ms(period_ms), size=size,
                source=f"s{index}", destination="sink",
                deadline=units.ms(draw(st.sampled_from([20, 40, 80, 160])))))
        else:
            messages.append(Message.sporadic(
                f"m{index}", min_interarrival=units.ms(160), size=size,
                source=f"s{index}", destination="sink", deadline=None))
    return messages


class TestFcfsProperties:
    @given(messages=message_sets())
    @settings(max_examples=60)
    def test_bound_equals_the_formula(self, messages):
        analysis = FcfsMultiplexerAnalysis(CAPACITY, units.us(16))
        bound = analysis.bound(messages)
        expected = sum(m.size for m in messages) / CAPACITY + units.us(16)
        assert abs(bound.delay - expected) < 1e-12

    @given(messages=message_sets(min_size=2))
    @settings(max_examples=60)
    def test_adding_a_flow_never_decreases_the_bound(self, messages):
        analysis = FcfsMultiplexerAnalysis(CAPACITY)
        partial = analysis.bound(messages[:-1]).delay
        full = analysis.bound(messages).delay
        assert full >= partial


class TestStrictPriorityProperties:
    @given(messages=message_sets())
    @settings(max_examples=60)
    def test_class_bounds_are_monotone_in_priority(self, messages):
        analysis = StrictPriorityMultiplexerAnalysis(CAPACITY, units.us(16))
        bounds = analysis.class_bounds(messages)
        ordered = [bounds[cls].delay for cls in sorted(bounds)]
        assert ordered == sorted(ordered)

    @given(messages=message_sets())
    @settings(max_examples=60)
    def test_highest_populated_class_never_exceeds_fcfs(self, messages):
        """The most urgent populated class always improves on (or equals) FCFS."""
        priority_analysis = StrictPriorityMultiplexerAnalysis(CAPACITY,
                                                              units.us(16))
        fcfs_analysis = FcfsMultiplexerAnalysis(CAPACITY, units.us(16))
        bounds = priority_analysis.class_bounds(messages)
        top_class = min(bounds)
        assert bounds[top_class].delay <= \
            fcfs_analysis.bound(messages).delay + 1e-12

    @given(messages=message_sets())
    @settings(max_examples=60)
    def test_preemption_never_hurts(self, messages):
        non_preemptive = StrictPriorityMultiplexerAnalysis(CAPACITY)
        preemptive = StrictPriorityMultiplexerAnalysis(CAPACITY,
                                                       preemptive=True)
        np_bounds = non_preemptive.class_bounds(messages)
        p_bounds = preemptive.class_bounds(messages)
        for cls in np_bounds:
            assert p_bounds[cls].delay <= np_bounds[cls].delay + 1e-12

    @given(messages=message_sets())
    @settings(max_examples=60)
    def test_bound_matches_the_formula(self, messages):
        analysis = StrictPriorityMultiplexerAnalysis(CAPACITY, units.us(16))
        grouped = analysis.group_by_class(messages)
        bounds = analysis.class_bounds(messages)
        for cls, bound in bounds.items():
            higher_or_equal = [m for c in PriorityClass if c <= cls
                               for m in grouped[c]]
            strictly_higher = [m for c in PriorityClass if c < cls
                               for m in grouped[c]]
            strictly_lower = [m for c in PriorityClass if c > cls
                              for m in grouped[c]]
            numerator = sum(m.size for m in higher_or_equal) + max(
                (m.size for m in strictly_lower), default=0.0)
            denominator = CAPACITY - sum(m.rate for m in strictly_higher)
            expected = numerator / denominator + units.us(16)
            assert abs(bound.delay - expected) < 1e-9

    @given(messages=message_sets())
    @settings(max_examples=40)
    def test_raising_capacity_never_increases_any_bound(self, messages):
        slow = StrictPriorityMultiplexerAnalysis(CAPACITY).class_bounds(
            messages)
        fast = StrictPriorityMultiplexerAnalysis(10 * CAPACITY).class_bounds(
            messages)
        for cls in slow:
            assert fast[cls].delay <= slow[cls].delay + 1e-12
