"""Property-based tests of the token-bucket shaper."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shaping import FlowShaper, TokenBucket

bucket_sizes = st.floats(min_value=100.0, max_value=1e5)
token_rates = st.floats(min_value=1e3, max_value=1e7)


class TestTokenBucketProperties:
    @given(bucket=bucket_sizes, rate=token_rates,
           times=st.lists(st.floats(min_value=0.0, max_value=1.0),
                          min_size=1, max_size=10))
    def test_tokens_never_exceed_the_bucket_size(self, bucket, rate, times):
        tb = TokenBucket(bucket, rate)
        for time in sorted(times):
            assert tb.tokens_at(time) <= bucket + 1e-9

    @given(bucket=bucket_sizes, rate=token_rates,
           sizes=st.lists(st.floats(min_value=1.0, max_value=100.0),
                          min_size=1, max_size=20))
    def test_conforming_consumption_never_goes_negative(self, bucket, rate,
                                                        sizes):
        tb = TokenBucket(bucket, rate)
        time = 0.0
        for size in sizes:
            time = tb.earliest_conforming_time(size, time)
            tb.consume(size, time)
            assert tb.tokens_at(time) >= -1e-9

    @given(bucket=bucket_sizes, rate=token_rates,
           size=st.floats(min_value=1.0, max_value=100.0),
           start=st.floats(min_value=0.0, max_value=0.5))
    def test_earliest_conforming_time_is_conforming_and_minimal(self, bucket,
                                                                rate, size,
                                                                start):
        tb = TokenBucket(bucket, rate, initial_tokens=0.0)
        earliest = tb.earliest_conforming_time(size, start)
        assert earliest >= start
        assert tb.conforms(size, earliest)


class TestShaperOutputConformance:
    @given(bucket=bucket_sizes, rate=token_rates,
           sizes=st.lists(st.floats(min_value=10.0, max_value=99.0),
                          min_size=2, max_size=15))
    @settings(max_examples=60)
    def test_released_traffic_respects_the_arrival_curve(self, bucket, rate,
                                                         sizes):
        """Over any window, released bits never exceed b + r * window."""
        shaper = FlowShaper("flow", TokenBucket(bucket, rate))
        releases = []
        time = 0.0
        for size in sizes:
            shaper.submit(size=size, time=time)
            time = shaper.next_release(time)
            shaper.release(time)
            releases.append((time, size))
        for start_index in range(len(releases)):
            volume = 0.0
            for end_index in range(start_index, len(releases)):
                volume += releases[end_index][1]
                window = releases[end_index][0] - releases[start_index][0]
                assert volume <= bucket + rate * window + 1e-6

    @given(bucket=bucket_sizes, rate=token_rates,
           sizes=st.lists(st.floats(min_value=10.0, max_value=99.0),
                          min_size=2, max_size=15))
    @settings(max_examples=30)
    def test_releases_are_ordered_in_time(self, bucket, rate, sizes):
        shaper = FlowShaper("flow", TokenBucket(bucket, rate))
        for size in sizes:
            shaper.submit(size=size, time=0.0)
        previous = 0.0
        while shaper.backlog:
            release = shaper.next_release(previous)
            shaper.release(release)
            assert release >= previous
            previous = release
