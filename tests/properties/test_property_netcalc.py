"""Property-based tests of the network-calculus core."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.netcalc import (
    AggregateArrivalCurve,
    ConstantRateServiceCurve,
    RateLatencyServiceCurve,
    StairArrivalCurve,
    TokenBucketArrivalCurve,
    backlog_bound,
    convolve_rate_latency,
    delay_bound,
    output_arrival_curve,
)

bursts = st.floats(min_value=1.0, max_value=1e6)
rates = st.floats(min_value=1.0, max_value=1e6)
capacities = st.floats(min_value=1e6 + 1, max_value=1e9)
latencies = st.floats(min_value=0.0, max_value=0.01)
intervals = st.floats(min_value=0.0, max_value=10.0)


class TestArrivalCurveProperties:
    @given(burst=bursts, rate=rates, t1=intervals, t2=intervals)
    def test_token_bucket_is_monotone(self, burst, rate, t1, t2):
        curve = TokenBucketArrivalCurve(burst, rate)
        low, high = sorted((t1, t2))
        assert curve(low) <= curve(high) + 1e-9

    @given(burst=bursts, rate=rates, t1=intervals, t2=intervals)
    def test_token_bucket_is_subadditive(self, burst, rate, t1, t2):
        """alpha(t1 + t2) <= alpha(t1) + alpha(t2) for a valid arrival curve."""
        curve = TokenBucketArrivalCurve(burst, rate)
        assert curve(t1 + t2) <= curve(t1) + curve(t2) + 1e-6

    @given(size=bursts, period=st.floats(min_value=1e-3, max_value=1.0),
           jitter=st.floats(min_value=0.0, max_value=0.5),
           t=intervals)
    def test_stair_curve_dominated_by_its_token_bucket_hull(self, size,
                                                            period, jitter,
                                                            t):
        stair = StairArrivalCurve(message_size=size, period=period,
                                  jitter=jitter)
        hull = stair.to_token_bucket()
        assert stair(t) <= hull(t) + 1e-6

    @given(size=bursts, period=st.floats(min_value=1e-3, max_value=1.0),
           t1=intervals, t2=intervals)
    def test_stair_curve_is_monotone(self, size, period, t1, t2):
        curve = StairArrivalCurve(message_size=size, period=period)
        low, high = sorted((t1, t2))
        assert curve(low) <= curve(high) + 1e-9

    @given(params=st.lists(st.tuples(bursts, rates), min_size=1, max_size=5),
           t=intervals)
    def test_aggregate_equals_the_sum_of_components(self, params, t):
        curves = [TokenBucketArrivalCurve(b, r) for b, r in params]
        aggregate = AggregateArrivalCurve(curves)
        assert aggregate(t) == sum(curve(t) for curve in curves)


class TestBoundProperties:
    @given(burst=bursts, rate=rates, capacity=capacities, latency=latencies)
    def test_delay_bound_is_non_negative(self, burst, rate, capacity,
                                         latency):
        alpha = TokenBucketArrivalCurve(burst, rate)
        beta = RateLatencyServiceCurve(rate=capacity, delay=latency)
        assert delay_bound(alpha, beta) >= 0

    @given(burst=bursts, rate=rates, capacity=capacities, latency=latencies)
    def test_backlog_bound_at_least_the_burst(self, burst, rate, capacity,
                                              latency):
        alpha = TokenBucketArrivalCurve(burst, rate)
        beta = RateLatencyServiceCurve(rate=capacity, delay=latency)
        assert backlog_bound(alpha, beta) >= burst

    @given(burst=bursts, rate=rates, c1=capacities, c2=capacities)
    def test_delay_bound_decreases_with_capacity(self, burst, rate, c1, c2):
        alpha = TokenBucketArrivalCurve(burst, rate)
        slow, fast = sorted((c1, c2))
        slow_bound = delay_bound(alpha, ConstantRateServiceCurve(slow))
        fast_bound = delay_bound(alpha, ConstantRateServiceCurve(fast))
        assert fast_bound <= slow_bound + 1e-12

    @given(b1=bursts, b2=bursts, rate=rates, capacity=capacities)
    def test_delay_bound_increases_with_burst(self, b1, b2, rate, capacity):
        small, large = sorted((b1, b2))
        beta = ConstantRateServiceCurve(capacity)
        assert delay_bound(TokenBucketArrivalCurve(small, rate), beta) <= \
            delay_bound(TokenBucketArrivalCurve(large, rate), beta) + 1e-12

    @given(burst=bursts, rate=rates, capacity=capacities, latency=latencies)
    @settings(max_examples=50)
    def test_output_curve_dominates_the_input(self, burst, rate, capacity,
                                              latency):
        alpha = TokenBucketArrivalCurve(burst, rate)
        beta = RateLatencyServiceCurve(rate=capacity, delay=latency)
        output = output_arrival_curve(alpha, beta)
        for t in (0.0, 0.001, 0.1, 1.0):
            assert output(t) >= alpha(t) - 1e-6

    @given(r1=capacities, r2=capacities, l1=latencies, l2=latencies)
    def test_tandem_convolution_properties(self, r1, r2, l1, l2):
        first = RateLatencyServiceCurve(rate=r1, delay=l1)
        second = RateLatencyServiceCurve(rate=r2, delay=l2)
        tandem = convolve_rate_latency(first, second)
        assert tandem.rate == min(r1, r2)
        assert tandem.delay == l1 + l2
        # The tandem curve never offers more service than either element.
        for t in (0.0, 0.005, 0.05):
            assert tandem(t) <= first(t) + 1e-6
            assert tandem(t) <= second(t) + 1e-6
