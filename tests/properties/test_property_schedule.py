"""Property-based equivalence: incremental 1553B packing vs the reference.

The schedule builder keeps a per-minor-frame load vector updated in O(1)
per placement and picks phases with a numpy argmin; these tests pit it
against a literal transcription of the original greedy algorithm (re-sum
every transaction duration for every candidate phase) on randomized message
sets and require *bit-identical* results — same intervals, same phases,
same transaction tables, same minor-frame durations.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Message, MessageSet, units
from repro.milstd1553.schedule import MajorFrameSchedule
from repro.milstd1553.transaction import (
    TransferFormat,
    transactions_for_message,
)

MINOR = units.ms(20)
MAJOR = units.ms(160)
FRAMES = 8


# ---------------------------------------------------------------------------
# Reference implementation: the original O(M^2 * F) greedy packing
# ---------------------------------------------------------------------------

def _reference_interval(message: Message) -> int:
    interval = int(message.period / MINOR + 1e-9)
    interval = max(1, min(interval, FRAMES))
    while FRAMES % interval != 0:
        interval -= 1
    return interval


def _reference_build(message_set: MessageSet,
                     transfer_format: TransferFormat):
    """(phases, intervals, slot name lists, slot load sums) — seed greedy."""
    slots: list[list] = [[] for _ in range(FRAMES)]
    phases: dict[str, int] = {}
    intervals: dict[str, int] = {}
    periodic = sorted(message_set.periodic(),
                      key=lambda m: (m.period, -m.size, m.name))
    for message in periodic:
        interval = _reference_interval(message)
        intervals[message.name] = interval
        message_duration = sum(
            t.duration for t in transactions_for_message(
                message, transfer_format))
        best_phase, best_load = 0, float("inf")
        for phase in range(interval):
            load = max(
                sum(t.duration for t in slots[i]) + message_duration
                for i in range(phase, FRAMES, interval))
            if load < best_load:
                best_phase, best_load = phase, load
        phases[message.name] = best_phase
        for transaction in transactions_for_message(message,
                                                    transfer_format):
            for slot_index in range(best_phase, FRAMES, interval):
                slots[slot_index].append(transaction)
    names = [[t.name for t in slot] for slot in slots]
    loads = [sum(t.duration for t in slot) for slot in slots]
    return phases, intervals, names, loads


# ---------------------------------------------------------------------------
# Randomized message sets
# ---------------------------------------------------------------------------

@st.composite
def periodic_message_sets(draw, max_size=24):
    """Random periodic populations; duplicate (period, size) pairs are
    deliberately likely, so phase tie-breaking gets exercised."""
    count = draw(st.integers(min_value=1, max_value=max_size))
    messages = []
    for index in range(count):
        period_ms = draw(st.sampled_from([20, 40, 80, 160]))
        words = draw(st.integers(min_value=1, max_value=96))
        messages.append(Message.periodic(
            f"m{index:02d}", period=units.ms(period_ms),
            size=units.words1553(words),
            source=f"s{index % 6}", destination="sink"))
    if draw(st.booleans()):
        messages.append(Message.sporadic(
            "alarm", min_interarrival=units.ms(20),
            size=units.words1553(2), source="s0", destination="sink",
            deadline=units.ms(3)))
    return MessageSet(messages, name="prop-set")


class TestPackingEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(message_set=periodic_message_sets(),
           transfer_format=st.sampled_from(list(TransferFormat)))
    def test_incremental_packing_matches_reference(self, message_set,
                                                   transfer_format):
        ref_phases, ref_intervals, ref_names, ref_loads = _reference_build(
            message_set, transfer_format)
        schedule = MajorFrameSchedule(message_set,
                                      transfer_format=transfer_format)
        assert schedule._phases == ref_phases
        assert schedule._intervals == ref_intervals
        assert [[t.name for t in slot.transactions]
                for slot in schedule.slots] == ref_names
        # Bit-identical loads: same additions in the same order.
        assert [slot.periodic_duration()
                for slot in schedule.slots] == ref_loads
        assert list(schedule.periodic_loads()) == ref_loads

    @settings(max_examples=40, deadline=None)
    @given(message_set=periodic_message_sets(max_size=12))
    def test_load_vector_matches_slot_sums(self, message_set):
        schedule = MajorFrameSchedule(message_set)
        assert [float(load) for load in schedule.periodic_loads()] == \
            [slot.periodic_duration() for slot in schedule.slots]
