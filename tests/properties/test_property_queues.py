"""Property-based tests of the queueing disciplines."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PriorityClass
from repro.shaping import FifoQueue, QueuedItem, StrictPriorityQueues

items = st.lists(
    st.tuples(st.floats(min_value=1.0, max_value=10_000.0),
              st.sampled_from(list(PriorityClass))),
    min_size=1, max_size=40)


class TestFifoProperties:
    @given(entries=items)
    def test_fifo_preserves_insertion_order(self, entries):
        queue = FifoQueue()
        for index, (size, priority) in enumerate(entries):
            queue.push(QueuedItem(size=size, enqueue_time=float(index),
                                  priority=priority, payload=index))
        popped = []
        while not queue.is_empty:
            popped.append(queue.pop().payload)
        assert popped == list(range(len(entries)))

    @given(entries=items)
    def test_occupancy_is_conserved(self, entries):
        queue = FifoQueue()
        total = 0.0
        for size, priority in entries:
            queue.push(QueuedItem(size=size, enqueue_time=0.0,
                                  priority=priority))
            total += size
        assert queue.occupancy == total
        drained = 0.0
        while not queue.is_empty:
            drained += queue.pop().size
        assert drained == total
        assert queue.occupancy == 0.0

    @given(entries=items, capacity=st.floats(min_value=1.0, max_value=20_000))
    def test_bounded_queue_never_exceeds_its_capacity(self, entries, capacity):
        queue = FifoQueue(capacity=capacity)
        for size, priority in entries:
            queue.push(QueuedItem(size=size, enqueue_time=0.0,
                                  priority=priority))
            assert queue.occupancy <= capacity + 1e-9
        accepted = len(queue)
        assert accepted + queue.drops == len(entries)


class TestStrictPriorityProperties:
    @given(entries=items)
    def test_pop_order_is_by_class_then_fifo(self, entries):
        queues = StrictPriorityQueues()
        for index, (size, priority) in enumerate(entries):
            queues.push(QueuedItem(size=size, enqueue_time=float(index),
                                   priority=priority, payload=index))
        popped = []
        while not queues.is_empty:
            popped.append(queues.pop())
        # Priorities never increase numerically... within a class the
        # original insertion order (payload index) is preserved.
        for cls in PriorityClass:
            indices = [item.payload for item in popped
                       if item.priority is cls]
            assert indices == sorted(indices)
        # Every popped item of a class comes after all higher-class items.
        first_seen = {}
        last_seen = {}
        for position, item in enumerate(popped):
            first_seen.setdefault(item.priority, position)
            last_seen[item.priority] = position

    @given(entries=items)
    def test_total_items_conserved(self, entries):
        queues = StrictPriorityQueues()
        for size, priority in entries:
            queues.push(QueuedItem(size=size, enqueue_time=0.0,
                                   priority=priority))
        assert len(queues) == len(entries)
        count = 0
        while queues.pop() is not None:
            count += 1
        assert count == len(entries)

    @given(entries=items)
    @settings(max_examples=50)
    def test_peek_always_matches_the_next_pop(self, entries):
        queues = StrictPriorityQueues()
        for size, priority in entries:
            queues.push(QueuedItem(size=size, enqueue_time=0.0,
                                   priority=priority))
        while not queues.is_empty:
            peeked = queues.peek()
            popped = queues.pop()
            assert peeked is popped
