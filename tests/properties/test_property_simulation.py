"""Property-based tests of the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import Simulator

delays = st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
                  max_size=50)


class TestEventOrdering:
    @given(delays=delays)
    def test_callbacks_fire_in_non_decreasing_time_order(self, delays):
        simulator = Simulator()
        fired_times = []
        for delay in delays:
            simulator.schedule(delay, lambda: fired_times.append(simulator.now))
        simulator.run()
        assert fired_times == sorted(fired_times)
        assert len(fired_times) == len(delays)

    @given(delays=delays)
    def test_clock_ends_at_the_latest_event(self, delays):
        simulator = Simulator()
        for delay in delays:
            simulator.schedule(delay, lambda: None)
        simulator.run()
        assert simulator.now == max(delays)

    @given(delays=delays, horizon=st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=50)
    def test_run_until_never_processes_later_events(self, delays, horizon):
        simulator = Simulator()
        fired = []
        for delay in delays:
            simulator.schedule(delay, fired.append, delay)
        simulator.run(until=horizon)
        assert all(delay <= horizon for delay in fired)
        expected = sorted(delay for delay in delays if delay <= horizon)
        assert sorted(fired) == expected

    @given(delays=delays)
    def test_equal_time_events_keep_scheduling_order(self, delays):
        simulator = Simulator()
        fired = []
        # Schedule every event at the same instant; insertion order must win.
        for index, __ in enumerate(delays):
            simulator.schedule(5.0, fired.append, index)
        simulator.run()
        assert fired == list(range(len(delays)))
