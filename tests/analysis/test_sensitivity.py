"""E7 — sensitivity and ablation studies."""

import pytest

from repro import PriorityClass, units
from repro.analysis import (
    burst_scaling_sweep,
    preemption_ablation,
    technology_delay_sweep,
)


class TestTechnologyDelaySweep:
    def test_bounds_grow_linearly_with_ttechno(self, real_case):
        rows = technology_delay_sweep(real_case,
                                      delays=(0.0, units.us(50),
                                              units.us(100)))
        assert rows[1].fcfs_bound - rows[0].fcfs_bound == pytest.approx(
            units.us(50))
        assert rows[2].urgent_priority_bound - rows[0].urgent_priority_bound \
            == pytest.approx(units.us(100))

    def test_urgent_class_remains_schedulable_up_to_large_delays(self, real_case):
        rows = technology_delay_sweep(real_case)
        assert all(row.urgent_meets_deadline for row in rows)

    def test_default_sweep_has_five_points(self, real_case):
        assert len(technology_delay_sweep(real_case)) == 5


class TestBurstScalingSweep:
    def test_bounds_scale_with_the_burst(self, real_case):
        rows = burst_scaling_sweep(real_case, factors=(1.0, 2.0))
        assert rows[1].fcfs_bound > 1.8 * rows[0].fcfs_bound

    def test_factor_one_matches_the_baseline(self, real_case):
        from repro import PaperCaseStudy
        rows = burst_scaling_sweep(real_case, factors=(1.0,))
        study = PaperCaseStudy(real_case)
        assert rows[0].fcfs_bound == pytest.approx(study.fcfs_bound(),
                                                   rel=1e-6)

    def test_constraints_eventually_break_when_bursts_grow(self, real_case):
        rows = burst_scaling_sweep(real_case, factors=(1.0, 8.0))
        assert rows[0].all_constraints_met
        assert not rows[1].all_constraints_met


class TestPreemptionAblation:
    def test_preemption_only_helps(self, real_case):
        rows = preemption_ablation(real_case)
        for row in rows:
            assert row.preemptive_bound <= row.non_preemptive_bound + 1e-12
            assert row.blocking_cost >= 0

    def test_urgent_class_pays_the_largest_relative_blocking(self, real_case):
        rows = {row.priority: row for row in preemption_ablation(real_case)}
        urgent = rows[PriorityClass.URGENT]
        background = rows[PriorityClass.BACKGROUND]
        relative_urgent = urgent.blocking_cost / urgent.non_preemptive_bound
        relative_background = (background.blocking_cost
                               / background.non_preemptive_bound)
        assert relative_urgent > relative_background

    def test_lowest_class_has_no_blocking(self, real_case):
        rows = {row.priority: row for row in preemption_ablation(real_case)}
        assert rows[PriorityClass.BACKGROUND].blocking_cost == pytest.approx(0.0)
