"""Buffer dimensioning."""

import pytest

from repro import units
from repro.analysis.buffers import (
    buffer_requirements,
    validate_buffer_requirements,
)


class TestBufferRequirements:
    @pytest.fixture(scope="class")
    def requirements(self, small_case):
        return buffer_requirements(small_case)

    def test_every_used_port_gets_a_requirement(self, requirements,
                                                small_case):
        station_uplinks = {req.node for req in requirements
                           if req.node.startswith("station-")}
        assert station_uplinks == set(small_case.sources())
        assert any(req.node == "switch-0" for req in requirements)

    def test_bounds_are_positive_and_finite(self, requirements):
        for req in requirements:
            assert 0 < req.backlog_bits < float("inf")
            assert req.backlog_bytes == pytest.approx(req.backlog_bits / 8)

    def test_port_bound_at_least_the_largest_frame(self, requirements):
        # Every port must at least hold one maximal frame of its flows.
        for req in requirements:
            assert req.backlog_bits >= 64 * 8  # minimal Ethernet frame

    def test_switch_ports_aggregate_more_flows_than_station_uplinks(
            self, requirements, small_case):
        switch_ports = [req for req in requirements if req.node == "switch-0"]
        busiest = max(switch_ports, key=lambda req: req.flow_count)
        per_station = max(len(msgs)
                          for msgs in small_case.by_source().values())
        assert busiest.flow_count >= per_station


class TestSimulationValidation:
    def test_observed_occupancy_stays_within_the_bounds(self, small_case):
        rows = validate_buffer_requirements(
            small_case, simulation_duration=units.ms(160))
        assert rows
        for row in rows:
            assert row.observed_within_bound, (row.node, row.toward)

    def test_observed_values_are_filled_for_used_ports(self, small_case):
        rows = validate_buffer_requirements(
            small_case, simulation_duration=units.ms(160))
        observed = [row for row in rows
                    if row.observed_bits == row.observed_bits]
        assert observed, "no port reported an observed occupancy"
