"""E6 — jitter comparison."""

import pytest

from repro import PriorityClass, units
from repro.analysis import jitter_comparison


class TestJitterComparison:
    @pytest.fixture(scope="class")
    def rows(self, small_case):
        return jitter_comparison(small_case, duration=units.ms(320))

    def test_three_technologies_reported(self, rows):
        assert {row.technology for row in rows} == {
            "mil-std-1553b", "ethernet-fcfs", "ethernet-priority"}

    def test_1553_periodic_jitter_is_inherently_low(self, rows):
        """The paper notes jitter is inherently low on 1553B (periodic)."""
        periodic = next(r for r in rows if r.technology == "mil-std-1553b"
                        and r.priority is PriorityClass.PERIODIC)
        assert periodic.worst_jitter <= units.us(1)

    def test_1553_sporadic_jitter_is_dominated_by_polling(self, rows):
        urgent = next(r for r in rows if r.technology == "mil-std-1553b"
                      and r.priority is PriorityClass.URGENT)
        assert urgent.worst_jitter > units.ms(1)

    def test_ethernet_jitter_is_small(self, rows):
        for row in rows:
            if row.technology.startswith("ethernet"):
                assert row.worst_jitter < units.ms(2)

    def test_mean_jitter_below_worst(self, rows):
        for row in rows:
            assert row.mean_jitter <= row.worst_jitter + 1e-12

    def test_jitter_alias(self, rows):
        for row in rows:
            assert row.jitter == row.worst_jitter

    def test_streams_counted(self, rows):
        assert all(row.streams >= 1 for row in rows)
