"""The bound-engine registry and its cross-engine validation wall.

Three independent WCRT backends live behind one ``BoundEngine`` API;
these tests pin the registry semantics, the calculus engine's
byte-identity with the pre-engine analysis paths, and — over the whole
committed fuzz corpus — that every engine's bound dominates the
simulated worst case.
"""

import math

import pytest

from repro.analysis.engines import (
    DEFAULT_ENGINE,
    DEFAULT_ENGINES,
    ENGINE_CHOICES,
    CalculusEngine,
    EngineResult,
    EngineSpec,
    all_engines,
    engine_names,
    get_engine,
    register_engine,
    resolve_engines,
)
from repro.campaigns import CampaignRunner, get as get_scenario
from repro.errors import (
    ConfigurationError,
    DuplicateEngineError,
    UnknownEngineError,
)
from repro.flows.priorities import PriorityClass
from repro.fuzz import load_entries
from repro.fuzz.campaign import evaluate_scenario

ENTRIES = load_entries()
ALL_ENGINES = tuple(engine_names())


class TestRegistry:
    def test_the_three_shipped_engines_are_registered(self):
        assert engine_names() == ["calculus", "holistic", "trajectory"]
        assert [engine.name for engine in all_engines()] == engine_names()

    def test_default_engine_is_the_papers(self):
        assert DEFAULT_ENGINE == "calculus"
        assert DEFAULT_ENGINES == ("calculus",)

    def test_get_engine_returns_the_registered_instance(self):
        assert isinstance(get_engine("calculus"), CalculusEngine)

    def test_unknown_engine_raises_a_configuration_error(self):
        with pytest.raises(UnknownEngineError, match="unknown engine"):
            get_engine("bogus")
        assert issubclass(UnknownEngineError, ConfigurationError)

    def test_duplicate_registration_is_rejected(self):
        with pytest.raises(DuplicateEngineError):
            register_engine(CalculusEngine())

    def test_engine_choices_cover_the_registry_plus_all(self):
        assert ENGINE_CHOICES == ("calculus", "holistic", "trajectory",
                                  "all")

    def test_engine_spec_resolves_through_the_registry(self):
        assert EngineSpec("holistic").resolve() is get_engine("holistic")
        with pytest.raises(UnknownEngineError):
            EngineSpec("bogus").resolve()


class TestResolveEngines:
    def test_none_and_empty_mean_the_default(self):
        assert resolve_engines(None) == DEFAULT_ENGINES
        assert resolve_engines("") == DEFAULT_ENGINES
        assert resolve_engines([]) == DEFAULT_ENGINES

    def test_all_selects_every_registered_engine(self):
        assert resolve_engines("all") == ALL_ENGINES

    def test_comma_lists_dedupe_and_keep_order(self):
        assert resolve_engines("holistic, calculus,holistic") == \
            ("holistic", "calculus")
        assert resolve_engines(["trajectory", "trajectory"]) == \
            ("trajectory",)

    def test_all_cannot_be_combined_with_names(self):
        with pytest.raises(UnknownEngineError, match="'all'"):
            resolve_engines("all,calculus")

    def test_unknown_names_are_rejected(self):
        with pytest.raises(UnknownEngineError):
            resolve_engines("calculus,bogus")


class TestEngineResult:
    def test_payload_round_trip_and_fingerprint_stability(self):
        result = EngineResult.from_mapping(
            "holistic", "fcfs", {PriorityClass.URGENT: 1e-3,
                                 PriorityClass.BACKGROUND: math.inf})
        clone = EngineResult.from_payload(result.to_payload())
        assert clone == result
        assert clone.fingerprint() == result.fingerprint()

    def test_stability_flags_follow_finiteness(self):
        result = EngineResult.from_mapping(
            "trajectory", "strict-priority",
            {PriorityClass.URGENT: 2e-3, PriorityClass.PERIODIC: math.inf})
        assert result.stable_by_class() == {PriorityClass.URGENT: True,
                                            PriorityClass.PERIODIC: False}
        assert not result.stable


class TestCalculusByteIdentity:
    """The calculus engine wraps — not reimplements — the paper's math."""

    @pytest.mark.parametrize("name", ["paper-real-case", "graph-diamond"])
    def test_scenario_bounds_match_the_campaign_rows(self, name):
        scenario = get_scenario(name)
        result = CampaignRunner().run([scenario]).results[0]
        engine = get_engine("calculus")
        for policy in scenario.policies:
            rows = {row.priority: row for row in result.rows_for(policy)}
            bounds = engine.class_bounds(scenario, policy).by_class()
            assert set(bounds) == set(rows)
            for cls, bound in bounds.items():
                assert bound == rows[cls].bound  # bit-identical, no approx

    def test_engine_results_fingerprint_deterministically(self):
        scenario = get_scenario("paper-real-case")
        engine = get_engine("calculus")
        first = engine.class_bounds(scenario, "strict-priority")
        second = engine.class_bounds(scenario, "strict-priority")
        assert first.fingerprint() == second.fingerprint()


class TestCorpusCrossValidation:
    """Replay the whole committed corpus under every engine."""

    @pytest.mark.parametrize("entry", ENTRIES,
                             ids=[e.filename for e in ENTRIES])
    def test_every_engine_dominates_the_simulated_floor(self, entry):
        outcome = evaluate_scenario(entry.scenario, duration=entry.duration,
                                    sim_seed=entry.sim_seed, engines="all")
        assert not outcome.violations
        assert outcome.bound_rows, "replay produced no floor measurements"
        for row in outcome.bound_rows:  # the calculus floor
            assert row.bound_holds
        covered = {row.engine for row in outcome.engine_rows}
        assert covered == set(ALL_ENGINES) - {DEFAULT_ENGINE}
        for row in outcome.engine_rows:
            assert row.bound_holds, (
                f"{row.engine} bound {row.bound} below simulated worst "
                f"{row.worst_simulated} ({row.policy}/{row.priority.name})")


class TestFixedPointTermination:
    """Overload must terminate with an instability flag, never hang."""

    @pytest.mark.parametrize("engine_name", ["holistic", "trajectory"])
    @pytest.mark.parametrize("scenario_name", ["overload", "high-jitter",
                                               "scalability-x8"])
    def test_bounds_are_finite_or_flagged(self, engine_name, scenario_name):
        scenario = get_scenario(scenario_name)
        engine = get_engine(engine_name)
        for policy in scenario.policies:
            result = engine.class_bounds(scenario, policy)
            assert result.bounds, "engine returned no classes"
            for row in result.bounds:
                assert row.stable == math.isfinite(row.bound)
                assert math.isfinite(row.bound) or row.bound == math.inf

    @pytest.mark.parametrize("engine_name", ["calculus", "holistic",
                                             "trajectory"])
    def test_saturated_port_is_flagged_unstable(self, engine_name):
        """A genuinely overloaded egress port (every flow converging on
        one sink at > link rate) must yield inf bounds with the stability
        flag cleared — terminating, not iterating forever."""
        from repro import Message, units
        from repro.analysis.engines.base import EngineResult
        from repro.analysis.validation import star_for_stations

        messages = [
            Message.periodic(f"m{i}", period=units.ms(10), size=8000,
                             source=f"src-{i}", destination="sink")
            for i in range(20)]  # 20 x 6.4 Mbps >> the 10 Mbps egress
        network = star_for_stations(
            [f"src-{i}" for i in range(20)] + ["sink"],
            capacity=units.mbps(10), technology_delay=units.us(16))
        engine = get_engine(engine_name)
        for policy in ("fcfs", "strict-priority"):
            mapping = engine.network_class_bounds(messages, policy,
                                                  network=network)
            result = EngineResult.from_mapping(engine.name, policy, mapping)
            assert result.bounds
            for row in result.bounds:
                assert row.bound == math.inf
                assert row.stable is False

    @pytest.mark.parametrize("engine_name", ["holistic", "trajectory"])
    def test_star_bounds_never_undercut_calculus(self, engine_name):
        """Per-hop dominance: on the same single-switch network the
        alternative engines pay at least the calculus delay per class."""
        from repro.analysis.engines.base import scenario_inputs

        for name in ("paper-real-case", "scalability-x2"):
            scenario = get_scenario(name)
            wire, network, graph_spec = scenario_inputs(scenario)
            for policy in scenario.policies:
                reference = get_engine("calculus").network_class_bounds(
                    wire, policy, network=network, graph_spec=graph_spec)
                bounds = get_engine(engine_name).network_class_bounds(
                    wire, policy, network=network, graph_spec=graph_spec)
                for cls, bound in bounds.items():
                    assert bound >= reference[cls] - 1e-12
