"""E1 — the paper's case study and its headline claims."""

import pytest

from repro import Message, MessageSet, PaperCaseStudy, PriorityClass, units
from repro.analysis import figure1_rows
from repro.errors import EmptyAggregateError


class TestFigure1OnTheRealCase:
    """The four qualitative findings of Figure 1 must reproduce."""

    @pytest.fixture(scope="class")
    def study(self, real_case):
        return PaperCaseStudy(real_case)

    def test_fcfs_violates_the_urgent_constraint(self, study):
        assert study.fcfs_violates_constraints()
        rows = {row.priority: row for row in study.figure1_rows()}
        assert not rows[PriorityClass.URGENT].fcfs_meets_deadline

    def test_priority_meets_every_constraint(self, study):
        assert study.priority_meets_all_constraints()

    def test_urgent_priority_bound_is_below_3ms(self, study):
        assert study.urgent_priority_bound_below_3ms()
        bounds = study.class_bounds("strict-priority")
        assert bounds[PriorityClass.URGENT] < units.ms(3)

    def test_periodic_priority_bound_improves_over_fcfs(self, study):
        assert study.periodic_priority_bound_below_fcfs()

    def test_fcfs_bound_is_identical_for_every_class(self, study):
        bounds = set(study.class_bounds("fcfs").values())
        assert len(bounds) == 1

    def test_priority_bounds_are_monotone(self, study):
        bounds = study.class_bounds("strict-priority")
        ordered = [bounds[cls] for cls in sorted(bounds)]
        assert ordered == sorted(ordered)

    def test_unknown_policy_is_rejected(self, study):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            study.class_bounds("weighted-fair")

    def test_rows_cover_all_four_classes(self, study):
        rows = study.figure1_rows()
        assert [row.priority for row in rows] == list(PriorityClass)
        assert sum(row.message_count for row in rows) == 144

    def test_class_deadlines(self, study):
        deadlines = study.class_deadlines()
        assert deadlines[PriorityClass.URGENT] == pytest.approx(units.ms(3))
        assert deadlines[PriorityClass.PERIODIC] == pytest.approx(units.ms(20))
        assert deadlines[PriorityClass.BACKGROUND] is None

    def test_convenience_wrapper_matches_the_class(self, real_case, study):
        with pytest.warns(DeprecationWarning):
            wrapper_rows = figure1_rows(real_case)
        class_rows = study.figure1_rows()
        assert [r.fcfs_bound for r in wrapper_rows] == \
            [r.fcfs_bound for r in class_rows]


class TestDeprecatedSurface:
    """The pre-engine entry points keep working, warn, and stay
    bit-identical to the policy-parametric surface they now wrap."""

    def test_fcfs_class_bounds_warns_and_matches(self, real_case):
        study = PaperCaseStudy(real_case)
        with pytest.warns(DeprecationWarning, match="fcfs_class_bounds"):
            legacy = study.fcfs_class_bounds()
        assert legacy == study.class_bounds("fcfs")

    def test_priority_class_bounds_warns_and_matches(self, real_case):
        study = PaperCaseStudy(real_case)
        with pytest.warns(DeprecationWarning,
                          match="priority_class_bounds"):
            legacy = study.priority_class_bounds()
        assert legacy == study.class_bounds("strict-priority")

    def test_figure1_rows_wrapper_warns_and_matches(self, real_case):
        with pytest.warns(DeprecationWarning, match="figure1_rows"):
            wrapper_rows = figure1_rows(real_case)
        assert wrapper_rows == PaperCaseStudy(real_case).figure1_rows()

    def test_new_surface_does_not_warn(self, real_case):
        import warnings as _warnings
        study = PaperCaseStudy(real_case)
        with _warnings.catch_warnings():
            _warnings.simplefilter("error", DeprecationWarning)
            study.class_bounds("fcfs")
            study.class_bounds("strict-priority")
            study.figure1_rows()


class TestScalingBehaviour:
    def test_higher_capacity_removes_the_fcfs_violation(self, real_case):
        fast = PaperCaseStudy(real_case, capacity=units.mbps(100))
        assert not fast.fcfs_violates_constraints()

    def test_fcfs_bound_formula(self, real_case):
        study = PaperCaseStudy(real_case, capacity=units.mbps(10),
                               technology_delay=units.us(16))
        expected = real_case.total_burst() / units.mbps(10) + units.us(16)
        assert study.fcfs_bound() == pytest.approx(expected)

    def test_technology_delay_shifts_every_bound(self, real_case):
        small = PaperCaseStudy(real_case, technology_delay=0.0)
        large = PaperCaseStudy(real_case, technology_delay=units.ms(1))
        assert large.fcfs_bound() - small.fcfs_bound() == pytest.approx(
            units.ms(1))
        delta = (large.class_bounds("strict-priority")[PriorityClass.URGENT]
                 - small.class_bounds("strict-priority")[PriorityClass.URGENT])
        assert delta == pytest.approx(units.ms(1))


class TestSmallSets:
    def test_single_class_set(self):
        message_set = MessageSet([
            Message.periodic("only", period=units.ms(20), size=1000,
                             source="a", destination="b")])
        study = PaperCaseStudy(message_set)
        rows = study.figure1_rows()
        assert len(rows) == 1
        assert rows[0].priority is PriorityClass.PERIODIC
        assert not study.urgent_priority_bound_below_3ms()

    def test_empty_set_rejected(self):
        study = PaperCaseStudy(MessageSet())
        with pytest.raises(EmptyAggregateError):
            study.figure1_rows()


class TestUnboundedRowConvention:
    """Overloaded sets report inf rows — the campaign runner's convention —
    instead of raising UnstableSystemError."""

    @pytest.fixture(scope="class")
    def overloaded(self, real_case):
        from repro.workloads.sweeps import scale_station_count
        # 32x the case study offers ~12.3 Mbps to a 10 Mbps link.
        return PaperCaseStudy(scale_station_count(real_case, 32))

    def test_figure1_rows_do_not_raise(self, overloaded):
        rows = overloaded.figure1_rows()
        assert [row.priority for row in rows] == list(PriorityClass)

    def test_fcfs_rows_are_unbounded_and_unstable(self, overloaded):
        import math
        for row in overloaded.figure1_rows():
            assert not row.fcfs_stable
            assert math.isinf(row.fcfs_bound)
            assert not row.fcfs_feasible

    def test_only_saturated_priority_classes_are_unbounded(self, overloaded):
        import math
        rows = {row.priority: row for row in overloaded.figure1_rows()}
        assert rows[PriorityClass.URGENT].priority_stable
        assert math.isfinite(rows[PriorityClass.URGENT].priority_bound)
        assert not rows[PriorityClass.BACKGROUND].priority_stable
        assert math.isinf(rows[PriorityClass.BACKGROUND].priority_bound)

    def test_headline_claims_report_the_overload(self, overloaded):
        assert overloaded.fcfs_violates_constraints()
        assert not overloaded.priority_meets_all_constraints()

    def test_convention_matches_the_campaign_runner(self, overloaded):
        """Same verdicts as CampaignRunner on the same overloaded traffic."""
        from repro.campaigns import CampaignRunner, WorkloadSpec, Scenario
        scenario = Scenario(
            name="t-overload-32", description="",
            workload=WorkloadSpec(replication=32))
        result = CampaignRunner().run([scenario]).results[0]
        assert result.feasible("fcfs") is \
            (not overloaded.fcfs_violates_constraints())
        assert result.feasible("strict-priority") is \
            overloaded.priority_meets_all_constraints()
        rows = {row.priority: row for row in result.rows_for("fcfs")}
        for fig_row in overloaded.figure1_rows():
            assert rows[fig_row.priority].stable == fig_row.fcfs_stable

    def test_stable_studies_keep_default_flags(self, real_case):
        for row in PaperCaseStudy(real_case).figure1_rows():
            assert row.fcfs_stable and row.priority_stable


class TestMutationAfterConstruction:
    def test_bounds_refresh_when_the_set_mutates(self):
        message_set = MessageSet([
            Message.periodic("a", period=units.ms(20), size=1000,
                             source="s0", destination="sink")])
        study = PaperCaseStudy(message_set)
        before = study.fcfs_bound()
        message_set.add(Message.periodic(
            "b", period=units.ms(20), size=1000,
            source="s1", destination="sink"))
        assert study.fcfs_bound() == pytest.approx(2 * before -
                                                   study.technology_delay)
        assert study.figure1_rows()[0].message_count == 2
