"""E3 — the MIL-STD-1553B baseline report."""

import pytest

from repro import PriorityClass, units
from repro.analysis import baseline_1553_report


class TestBaselineReport:
    @pytest.fixture(scope="class")
    def report(self, real_case):
        return baseline_1553_report(real_case,
                                    simulation_duration=units.ms(320))

    def test_schedule_is_feasible(self, report):
        assert report.feasible
        assert len(report.minor_frame_durations) == 8

    def test_worst_minor_frame_is_loaded_but_fits(self, report):
        assert 0.5 < report.max_utilization <= 1.0

    def test_simulation_has_no_overrun(self, report):
        assert report.simulated_overruns == 0

    def test_simulated_utilization_is_high(self, report):
        assert 0.5 < report.simulated_bus_utilization < 1.0

    def test_analytic_worst_dominates_simulated_worst(self, report):
        for cls, simulated in report.simulated_worst_per_class.items():
            if cls is PriorityClass.BACKGROUND:
                continue  # background is best-effort, not guaranteed
            assert simulated <= report.analytic_worst_per_class[cls] + 1e-6

    def test_periodic_class_fits_in_a_minor_frame(self, report):
        assert report.analytic_worst_per_class[PriorityClass.PERIODIC] <= \
            units.ms(20)

    def test_urgent_class_cannot_be_guaranteed_by_polling(self, report):
        assert report.analytic_worst_per_class[PriorityClass.URGENT] > \
            units.ms(3)
