"""E2 — FCFS violations across capacities."""

import pytest

from repro import PriorityClass, units
from repro.analysis import fcfs_violation_table


class TestViolationTable:
    @pytest.fixture(scope="class")
    def rows(self, real_case):
        return fcfs_violation_table(real_case)

    def test_two_capacities_by_default(self, rows):
        capacities = {row.capacity for row in rows}
        assert capacities == {units.mbps(10), units.mbps(100)}

    def test_fcfs_violates_only_the_urgent_class_at_10mbps(self, rows):
        at_10 = [row for row in rows if row.capacity == units.mbps(10)]
        violated = {row.priority for row in at_10
                    if row.fcfs_violated_messages > 0}
        assert violated == {PriorityClass.URGENT}

    def test_every_urgent_message_is_violated_at_10mbps(self, rows, real_case):
        urgent_row = next(row for row in rows
                          if row.capacity == units.mbps(10)
                          and row.priority is PriorityClass.URGENT)
        urgent_count = len(real_case.by_priority()[PriorityClass.URGENT])
        assert urgent_row.fcfs_violated_messages == urgent_count
        assert not urgent_row.fcfs_ok

    def test_priority_never_violates(self, rows):
        assert all(row.priority_violated_messages == 0 for row in rows)
        assert all(row.priority_ok for row in rows)

    def test_100mbps_fcfs_is_clean(self, rows):
        at_100 = [row for row in rows if row.capacity == units.mbps(100)]
        assert all(row.fcfs_violated_messages == 0 for row in at_100)

    def test_bounds_decrease_with_capacity(self, rows):
        for priority in PriorityClass:
            pair = [row for row in rows if row.priority is priority]
            slow = next(r for r in pair if r.capacity == units.mbps(10))
            fast = next(r for r in pair if r.capacity == units.mbps(100))
            assert fast.fcfs_bound < slow.fcfs_bound
            assert fast.priority_bound < slow.priority_bound

    def test_custom_capacity_list(self, real_case):
        rows = fcfs_violation_table(real_case,
                                    capacities=(units.mbps(10),))
        assert {row.capacity for row in rows} == {units.mbps(10)}
