"""E4 — 1553B vs Ethernet comparison."""

import pytest

from repro import PriorityClass, units
from repro.analysis import technology_comparison


class TestComparison:
    @pytest.fixture(scope="class")
    def rows(self, real_case):
        return technology_comparison(real_case)

    def test_one_row_per_class(self, rows):
        assert [row.priority for row in rows] == list(PriorityClass)

    def test_periodic_class_is_fine_everywhere(self, rows):
        periodic = next(r for r in rows
                        if r.priority is PriorityClass.PERIODIC)
        assert periodic.milstd1553_ok
        assert periodic.fcfs_ok
        assert periodic.priority_ok

    def test_urgent_class_needs_the_priority_handling(self, rows):
        urgent = next(r for r in rows if r.priority is PriorityClass.URGENT)
        # Neither 20 ms polling on 1553B nor plain FCFS at 10 Mbps meets the
        # 3 ms constraint; the 802.1p priorities do.
        assert not urgent.milstd1553_ok
        assert not urgent.fcfs_ok
        assert urgent.priority_ok

    def test_ethernet_priority_meets_everything(self, rows):
        assert all(row.priority_ok for row in rows)

    def test_ethernet_priority_beats_1553_for_every_class(self, rows):
        for row in rows:
            assert row.ethernet_priority_bound < row.milstd1553_bound
            assert row.speedup_over_1553 > 1.0

    def test_message_counts_cover_the_whole_set(self, rows, real_case):
        assert sum(row.message_count for row in rows) == len(real_case)

    def test_deadlines_match_the_class_minima(self, rows):
        urgent = next(r for r in rows if r.priority is PriorityClass.URGENT)
        assert urgent.deadline == pytest.approx(units.ms(3))
        background = next(r for r in rows
                          if r.priority is PriorityClass.BACKGROUND)
        assert background.deadline is None
