"""E5 — analytic bounds vs simulated worst delays."""

import pytest

from repro import PriorityClass, units
from repro.analysis import validate_bounds
from repro.analysis.validation import star_for_message_set, wire_level_messages
from repro.ethernet.frame import wire_burst


class TestWireLevelMessages:
    def test_sizes_are_the_on_wire_bursts(self, tiny_message_set):
        converted = wire_level_messages(tiny_message_set)
        for original, wire in zip(tiny_message_set, converted):
            assert wire.size == pytest.approx(wire_burst(original))
            assert wire.size > original.size

    def test_periods_and_endpoints_preserved(self, tiny_message_set):
        converted = wire_level_messages(tiny_message_set)
        for original, wire in zip(tiny_message_set, converted):
            assert wire.period == original.period
            assert wire.source == original.source


class TestStarForMessageSet:
    def test_star_covers_every_station(self, small_case):
        network = star_for_message_set(small_case)
        assert set(small_case.stations()) <= set(network.stations)
        network.validate()


class TestBoundValidation:
    @pytest.fixture(scope="class")
    def rows(self, small_case):
        return validate_bounds(small_case,
                               simulation_duration=units.ms(160))

    def test_both_policies_and_every_class_present(self, rows):
        policies = {row.policy for row in rows}
        assert policies == {"fcfs", "strict-priority"}
        urgent_rows = [r for r in rows if r.priority is PriorityClass.URGENT]
        assert len(urgent_rows) == 2

    def test_every_bound_dominates_the_simulation(self, rows):
        assert rows, "validation produced no row"
        for row in rows:
            assert row.bound_holds, (row.policy, row.priority)

    def test_bounds_are_reasonably_tight(self, rows):
        # The adversarial synchronised scenario should get within a factor
        # of ~4 of the analytic worst case for at least some class.
        assert any(row.tightness > 0.25 for row in rows)

    def test_simulated_mean_below_worst(self, rows):
        for row in rows:
            assert row.simulated_mean <= row.simulated_worst + 1e-12

    def test_priority_helps_the_urgent_class_in_simulation_too(self, rows):
        fcfs = next(r for r in rows if r.policy == "fcfs"
                    and r.priority is PriorityClass.URGENT)
        priority = next(r for r in rows if r.policy == "strict-priority"
                        and r.priority is PriorityClass.URGENT)
        assert priority.simulated_worst <= fcfs.simulated_worst + 1e-9
        assert priority.analytic_bound < fcfs.analytic_bound
