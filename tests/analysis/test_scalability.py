"""E8 — scalability sweep."""

import pytest

from repro import units
from repro.analysis.scalability import (
    max_feasible_scale,
    scalability_sweep,
)


class TestScalabilitySweep:
    @pytest.fixture(scope="class")
    def rows(self, real_case):
        return scalability_sweep(real_case, scales=(1, 2, 4, 8))

    def test_one_row_per_scale(self, rows):
        assert [row.scale for row in rows] == [1, 2, 4, 8]

    def test_message_counts_scale_linearly(self, rows, real_case):
        for row in rows:
            assert row.message_count == row.scale * len(real_case)

    def test_utilizations_grow_monotonically(self, rows):
        bus = [row.milstd1553_utilization for row in rows]
        ethernet = [row.ethernet_utilization for row in rows]
        assert bus == sorted(bus)
        assert ethernet == sorted(ethernet)

    def test_baseline_is_feasible_everywhere_but_fcfs(self, rows):
        first = rows[0]
        assert first.milstd1553_feasible
        assert first.priority_feasible
        assert not first.fcfs_feasible  # the 3 ms class is already violated

    def test_1553_saturates_before_prioritised_ethernet(self, rows):
        last_bus_ok = max((row.scale for row in rows
                           if row.milstd1553_feasible), default=0)
        last_priority_ok = max((row.scale for row in rows
                                if row.priority_feasible), default=0)
        assert last_priority_ok > last_bus_ok

    def test_everything_breaks_at_extreme_scale(self, real_case):
        rows = scalability_sweep(real_case, scales=(32,))
        assert not rows[0].milstd1553_feasible
        assert not rows[0].priority_feasible


class TestMaxFeasibleScale:
    def test_priority_supports_more_than_the_bus(self, real_case):
        bus = max_feasible_scale(real_case, "mil-std-1553b", limit=12)
        priority = max_feasible_scale(real_case, "ethernet-priority",
                                      limit=12)
        assert priority > bus >= 1

    def test_fcfs_supports_nothing_at_10mbps(self, real_case):
        assert max_feasible_scale(real_case, "ethernet-fcfs", limit=4) == 0

    def test_fcfs_supports_the_baseline_at_100mbps(self, real_case):
        assert max_feasible_scale(real_case, "ethernet-fcfs",
                                  capacity=units.mbps(100), limit=2) >= 1

    def test_unknown_approach_rejected(self, real_case):
        with pytest.raises(ValueError):
            max_feasible_scale(real_case, "token-ring")
