"""Statistics collectors."""

import math

import pytest

from repro.simulation.statistics import (
    Counter,
    LatencyRecorder,
    SummaryStatistics,
    TimeWeightedAverage,
    safe_max,
)


class TestLatencyRecorder:
    def test_summary_of_known_samples(self):
        recorder = LatencyRecorder("test")
        recorder.extend([1.0, 2.0, 3.0, 4.0])
        summary = recorder.summary()
        assert summary.count == 4
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.mean == pytest.approx(2.5)
        assert summary.p50 == pytest.approx(2.5)

    def test_jitter_is_max_minus_min(self):
        recorder = LatencyRecorder()
        recorder.extend([0.002, 0.005, 0.003])
        assert recorder.summary().jitter == pytest.approx(0.003)

    def test_empty_summary_is_nan(self):
        summary = LatencyRecorder().summary()
        assert summary.count == 0
        assert math.isnan(summary.mean)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-0.001)

    def test_maximum_and_minimum_properties(self):
        recorder = LatencyRecorder()
        recorder.extend([0.5, 0.1, 0.3])
        assert recorder.maximum == 0.5
        assert recorder.minimum == 0.1

    def test_maximum_of_empty_recorder_is_nan(self):
        assert math.isnan(LatencyRecorder().maximum)

    def test_samples_returns_copy(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        samples = recorder.samples
        samples.append(99.0)
        assert recorder.count == 1

    def test_percentiles_are_ordered(self):
        recorder = LatencyRecorder()
        recorder.extend(float(i) for i in range(100))
        summary = recorder.summary()
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum


class TestSummaryStatistics:
    def test_empty_constructor(self):
        empty = SummaryStatistics.empty()
        assert empty.count == 0
        assert math.isnan(empty.maximum)


class TestCounter:
    def test_increment_default_is_one(self):
        counter = Counter("frames")
        counter.increment()
        counter.increment()
        assert counter.value == 2

    def test_increment_by_amount(self):
        counter = Counter()
        counter.increment(5)
        assert counter.value == 5

    def test_reset(self):
        counter = Counter()
        counter.increment(3)
        counter.reset()
        assert counter.value == 0


class TestTimeWeightedAverage:
    def test_constant_signal_average(self):
        signal = TimeWeightedAverage(initial_value=2.0)
        signal.update(10.0, 2.0)
        assert signal.average() == pytest.approx(2.0)

    def test_step_signal_average(self):
        signal = TimeWeightedAverage(initial_value=0.0)
        signal.update(1.0, 4.0)   # 0 for 1 s
        signal.update(3.0, 0.0)   # 4 for 2 s
        assert signal.average() == pytest.approx(8.0 / 3.0)

    def test_average_with_explicit_until(self):
        signal = TimeWeightedAverage(initial_value=1.0)
        signal.update(1.0, 3.0)
        assert signal.average(until=2.0) == pytest.approx((1.0 + 3.0) / 2.0)

    def test_maximum_tracks_peak(self):
        signal = TimeWeightedAverage()
        signal.update(1.0, 10.0)
        signal.update(2.0, 5.0)
        assert signal.maximum == 10.0

    def test_time_going_backwards_rejected(self):
        signal = TimeWeightedAverage()
        signal.update(2.0, 1.0)
        with pytest.raises(ValueError):
            signal.update(1.0, 1.0)

    def test_zero_duration_average_is_nan(self):
        assert math.isnan(TimeWeightedAverage().average())

    def test_close_extends_last_interval(self):
        signal = TimeWeightedAverage(initial_value=2.0)
        signal.close(5.0)
        assert signal.average() == pytest.approx(2.0)


class TestSafeMax:
    def test_regular_max(self):
        assert safe_max([1.0, 3.0, 2.0]) == 3.0

    def test_empty_returns_default(self):
        assert safe_max([], default=0.0) == 0.0
        assert safe_max([], default=7.0) == 7.0

    def test_nan_returns_default(self):
        assert safe_max([float("nan")], default=0.0) == 0.0


class TestLatencyRecorderBuffer:
    """The amortized-growth array buffer behind the recorder."""

    def test_growth_beyond_initial_capacity(self):
        recorder = LatencyRecorder()
        count = LatencyRecorder._INITIAL_CAPACITY * 4 + 3
        for index in range(count):
            recorder.record(float(index))
        assert recorder.count == count
        assert recorder.samples == [float(i) for i in range(count)]
        assert recorder.maximum == float(count - 1)

    def test_extend_grows_in_one_step(self):
        recorder = LatencyRecorder()
        values = [float(i) for i in range(LatencyRecorder._INITIAL_CAPACITY * 3)]
        recorder.extend(values)
        assert recorder.samples == values

    def test_extend_rejects_negative_values_atomically(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        with pytest.raises(ValueError):
            recorder.extend([2.0, -1.0])
        # The batch was rejected as a whole.
        assert recorder.count == 1

    def test_extend_empty_iterable_is_a_noop(self):
        recorder = LatencyRecorder()
        recorder.extend([])
        assert recorder.count == 0

    def test_single_sample_percentiles(self):
        recorder = LatencyRecorder()
        recorder.record(0.004)
        summary = recorder.summary()
        assert summary.count == 1
        assert summary.p50 == summary.p95 == summary.p99 == 0.004
        assert summary.minimum == summary.maximum == 0.004
        assert summary.std == 0.0
        assert summary.jitter == 0.0

    def test_summary_matches_reference_implementation(self):
        import numpy as np
        recorder = LatencyRecorder()
        values = [0.001 * (i % 17) + 0.0005 for i in range(1000)]
        recorder.extend(values)
        summary = recorder.summary()
        data = np.asarray(values)
        assert summary.mean == pytest.approx(float(data.mean()))
        assert summary.std == pytest.approx(float(data.std()))
        assert summary.p95 == pytest.approx(float(np.percentile(data, 95)))
