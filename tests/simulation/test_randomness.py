"""Reproducible random streams."""

import numpy as np

from repro.simulation import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        first = RandomStreams(42).stream("jitter").random(5)
        second = RandomStreams(42).stream("jitter").random(5)
        assert np.allclose(first, second)

    def test_different_seeds_differ(self):
        first = RandomStreams(1).stream("jitter").random(5)
        second = RandomStreams(2).stream("jitter").random(5)
        assert not np.allclose(first, second)

    def test_different_names_are_independent(self):
        streams = RandomStreams(7)
        first = streams.stream("a").random(5)
        second = streams.stream("b").random(5)
        assert not np.allclose(first, second)

    def test_stream_is_cached(self):
        streams = RandomStreams(3)
        assert streams.stream("x") is streams.stream("x")

    def test_creation_order_does_not_change_draws(self):
        forward = RandomStreams(11)
        forward.stream("alpha")
        alpha_then_beta = forward.stream("beta").random(4)

        backward = RandomStreams(11)
        backward.stream("beta")
        beta_first = backward.stream("beta")
        # Re-request to make sure caching still returns the same generator.
        assert backward.stream("beta") is beta_first
        backward_draws = beta_first.random(4)
        assert np.allclose(alpha_then_beta, backward_draws)

    def test_names_are_sorted(self):
        streams = RandomStreams(0)
        streams.stream("zulu")
        streams.stream("alpha")
        assert streams.names() == ["alpha", "zulu"]

    def test_seed_property(self):
        assert RandomStreams(99).seed == 99
