"""Golden fixtures proving the kernel rewrite is behavior-preserving.

The fast simulation kernel must be *bit-identical* to the original
reference implementation: for a fixed seed, the same per-flow latency
samples, drop counts and link utilizations, in the same order.  This
module defines the fixture grid (policies × release scenarios, plus a
drop-forcing cell) and the digest format; the JSON files under
``tests/simulation/golden/`` were captured from the pre-rewrite engine
and are asserted by ``test_golden_equivalence.py``.

To regenerate after an *intentional* behavior change (document it!)::

    PYTHONPATH=src python tests/simulation/golden_fixture.py
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro import units
from repro.analysis.validation import star_for_message_set
from repro.ethernet.network_sim import EthernetNetworkSimulator
from repro.topology.graph import (
    diamond_graph_spec,
    random_graph_spec,
    ring_graph_spec,
    star_graph_spec,
)
from repro.workloads import RealCaseParameters, generate_real_case

__all__ = ["GOLDEN_DIR", "GOLDEN_CELLS", "GRAPH_GOLDEN_CELLS",
           "capture_cell", "capture_graph_cell", "cell_path", "graph_spec"]

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: The fixture grid: (name, station_count, workload_seed, policy, scenario,
#: simulation_seed, queue_capacity_bits, shaping_enabled).
GOLDEN_CELLS = (
    ("small-fcfs-synchronized", 8, 3, "fcfs", "synchronized", 1, None, True),
    ("small-fcfs-staggered", 8, 3, "fcfs", "staggered", 1, None, True),
    ("small-fcfs-random", 8, 3, "fcfs", "random", 1, None, True),
    ("small-priority-synchronized", 8, 3, "strict-priority", "synchronized",
     1, None, True),
    ("small-priority-staggered", 8, 3, "strict-priority", "staggered",
     1, None, True),
    ("small-priority-random", 8, 3, "strict-priority", "random", 1, None,
     True),
    # The paper's 16-station case study, the bound-vs-sim workload.
    ("paper-fcfs-synchronized", 16, 7, "fcfs", "synchronized", 1, None, True),
    ("paper-priority-synchronized", 16, 7, "strict-priority", "synchronized",
     1, None, True),
    # Unshaped traffic into tiny buffers: exercises the drop accounting.
    ("small-fcfs-drops", 8, 3, "fcfs", "synchronized", 1, 2_000.0, False),
)

#: Multi-hop graph fixture grid: (name, family, station_count,
#: workload_seed, policy, scenario, simulation_seed).  The ``star`` family
#: is deliberately absent — its network is *identical* to the legacy star,
#: which ``test_golden_equivalence.py`` asserts against the legacy files.
GRAPH_GOLDEN_CELLS = (
    ("graph-diamond-fcfs", "diamond", 8, 3, "fcfs", "synchronized", 1),
    ("graph-diamond-priority", "diamond", 8, 3, "strict-priority",
     "synchronized", 1),
    ("graph-ring-fcfs", "ring", 8, 3, "fcfs", "synchronized", 1),
    ("graph-random-priority", "random", 8, 3, "strict-priority",
     "synchronized", 1),
)


def graph_spec(family: str, station_count: int):
    """The deterministic graph spec of one golden family."""
    if family == "star":
        return star_graph_spec(station_count)
    if family == "diamond":
        return diamond_graph_spec(station_count)
    if family == "ring":
        return ring_graph_spec(station_count, switch_count=4)
    return random_graph_spec(station_count, switch_count=4, seed=11)


def cell_path(name: str) -> Path:
    """Fixture file of one golden cell."""
    return GOLDEN_DIR / f"{name}.json"


def _digest(values) -> str:
    """SHA-256 over the exact reprs of a float sequence (order included)."""
    joined = ",".join(repr(float(value)) for value in values)
    return hashlib.sha256(joined.encode("ascii")).hexdigest()


def capture_cell(station_count: int, workload_seed: int, policy: str,
                 scenario: str, seed: int, queue_capacity: float | None,
                 shaping_enabled: bool) -> dict:
    """Run one simulation cell and distill it into a comparable digest.

    Per flow the digest keeps the sample count, the SHA-256 of the ordered
    sample reprs (bit-exact, compact) and the repr of the worst sample
    (readable when a mismatch needs debugging); drops, delivery counters,
    per-link utilizations, queue maxima and the processed-event count are
    stored in full.
    """
    message_set = generate_real_case(
        RealCaseParameters(station_count=station_count), seed=workload_seed)
    network = star_for_message_set(message_set)
    return _capture_network(network, message_set, policy, scenario, seed,
                            queue_capacity, shaping_enabled)


def capture_graph_cell(family: str, station_count: int, workload_seed: int,
                       policy: str, scenario: str, seed: int) -> dict:
    """Run one golden cell on a multi-hop graph family's routed network."""
    message_set = generate_real_case(
        RealCaseParameters(station_count=station_count), seed=workload_seed)
    network = graph_spec(family, station_count).to_network()
    return _capture_network(network, message_set, policy, scenario, seed,
                            None, True)


def _capture_network(network, message_set, policy, scenario, seed,
                     queue_capacity, shaping_enabled) -> dict:
    simulator = EthernetNetworkSimulator(
        network, message_set.messages, policy=policy, scenario=scenario,
        seed=seed, queue_capacity=queue_capacity,
        shaping_enabled=shaping_enabled)
    results = simulator.run(duration=units.ms(320))
    flows = {}
    for name in sorted(results.flow_latencies):
        recorder = results.flow_latencies[name]
        samples = recorder.samples
        flows[name] = {
            "count": recorder.count,
            "sha256": _digest(samples),
            "max": repr(max(samples)) if samples else "",
        }
    return {
        "policy": policy,
        "scenario": scenario,
        "flows": flows,
        "instances_sent": results.instances_sent,
        "instances_delivered": results.instances_delivered,
        "frames_dropped": results.frames_dropped,
        "link_utilization": {key: repr(value) for key, value
                             in sorted(results.link_utilization.items())},
        "max_queue_bits": {key: repr(value) for key, value
                           in sorted(results.max_queue_bits.items())},
        "events_processed": simulator.simulator.events_processed,
    }


def regenerate() -> None:
    """Re-capture every golden cell with the *current* engine."""
    GOLDEN_DIR.mkdir(exist_ok=True)
    for (name, stations, workload_seed, policy, scenario, seed,
         capacity, shaping) in GOLDEN_CELLS:
        digest = capture_cell(stations, workload_seed, policy, scenario,
                              seed, capacity, shaping)
        cell_path(name).write_text(
            json.dumps(digest, indent=1, sort_keys=True) + "\n")
        print(f"captured {name}: {digest['events_processed']} events, "
              f"{digest['frames_dropped']} drops")
    for (name, family, stations, workload_seed, policy, scenario,
         seed) in GRAPH_GOLDEN_CELLS:
        digest = capture_graph_cell(family, stations, workload_seed,
                                    policy, scenario, seed)
        cell_path(name).write_text(
            json.dumps(digest, indent=1, sort_keys=True) + "\n")
        print(f"captured {name}: {digest['events_processed']} events, "
              f"{digest['frames_dropped']} drops")


if __name__ == "__main__":
    regenerate()
