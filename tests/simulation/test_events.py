"""Event objects and the pending-event queue."""

from repro.simulation.events import Event, EventQueue


class TestEvent:
    def test_ordering_by_time(self):
        early = Event(time=1.0, sequence=5, callback=lambda: None)
        late = Event(time=2.0, sequence=1, callback=lambda: None)
        assert early < late

    def test_ties_broken_by_sequence(self):
        first = Event(time=1.0, sequence=1, callback=lambda: None)
        second = Event(time=1.0, sequence=2, callback=lambda: None)
        assert first < second

    def test_cancel_sets_flag(self):
        event = Event(time=1.0, sequence=0, callback=lambda: None)
        assert not event.cancelled
        event.cancel()
        assert event.cancelled

    def test_fire_invokes_callback_with_args(self):
        seen = []
        event = Event(time=0.0, sequence=0, callback=seen.append,
                      args=("payload",))
        event.fire()
        assert seen == ["payload"]


class TestEventQueue:
    def test_pop_returns_events_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, lambda: None)
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_fifo_order_for_equal_times(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, order.append, ("first",))
        queue.push(1.0, order.append, ("second",))
        queue.pop().fire()
        queue.pop().fire()
        assert order == ["first", "second"]

    def test_pop_skips_cancelled_events(self):
        queue = EventQueue()
        cancelled = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        cancelled.cancel()
        assert queue.pop().time == 2.0

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        keep = queue.push(1.0, lambda: None)
        drop = queue.push(2.0, lambda: None)
        drop.cancel()
        assert len(queue) == 1
        assert keep in [drop, keep]

    def test_bool_false_when_only_cancelled_remain(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        assert not queue

    def test_peek_time_returns_earliest_live_event(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.peek_time() == 1.0
        first.cancel()
        assert queue.peek_time() == 2.0

    def test_peek_time_empty_returns_none(self):
        assert EventQueue().peek_time() is None


class TestFastPathEntries:
    """The uncancellable (time, sequence, callback, arg) heap entries."""

    def test_push_fast_interleaves_with_push_deterministically(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, order.append, ("event",))
        queue.push_fast(1.0, order.append, "fast")
        queue.push(1.0, order.append, ("late-event",))
        for _ in range(3):
            queue.pop().fire()
        assert order == ["event", "fast", "late-event"]

    def test_pop_wraps_fast_entries_in_events(self):
        queue = EventQueue()
        queue.push_fast(2.0, lambda arg: None, "payload")
        event = queue.pop()
        assert isinstance(event, Event)
        assert event.time == 2.0
        assert event.args == ("payload",)
        assert not event.cancelled

    def test_len_counts_fast_entries(self):
        queue = EventQueue()
        queue.push_fast(1.0, lambda arg: None, None)
        cancelled = queue.push(2.0, lambda: None)
        cancelled.cancel()
        assert len(queue) == 1
        assert bool(queue)

    def test_peek_time_sees_fast_entries(self):
        queue = EventQueue()
        queue.push_fast(3.0, lambda arg: None, None)
        assert queue.peek_time() == 3.0

    def test_cancelled_event_before_fast_entry_is_purged(self):
        queue = EventQueue()
        cancelled = queue.push(1.0, lambda: None)
        queue.push_fast(2.0, lambda arg: None, "x")
        cancelled.cancel()
        assert queue.peek_time() == 2.0
        event = queue.pop()
        assert event.time == 2.0
