"""Trace recorder."""

from repro.simulation import TraceRecorder


class TestTraceRecorder:
    def test_records_entries_in_order(self):
        trace = TraceRecorder()
        trace.record(1.0, "frame.enqueue", "station-00", frame_id=1)
        trace.record(2.0, "frame.tx_start", "station-00", frame_id=1)
        assert [entry.category for entry in trace] == [
            "frame.enqueue", "frame.tx_start"]

    def test_details_are_stored(self):
        trace = TraceRecorder()
        trace.record(0.5, "bus.poll", "bus-controller", terminal="rt-3")
        assert trace.entries[0].details == {"terminal": "rt-3"}

    def test_disabled_recorder_ignores_entries(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1.0, "frame.enqueue", "x")
        assert len(trace) == 0

    def test_category_whitelist(self):
        trace = TraceRecorder(categories=["frame."])
        trace.record(1.0, "frame.enqueue", "x")
        trace.record(1.0, "bus.poll", "y")
        assert len(trace) == 1
        assert trace.entries[0].category == "frame.enqueue"

    def test_filter_by_prefix(self):
        trace = TraceRecorder()
        trace.record(1.0, "frame.enqueue", "x")
        trace.record(2.0, "frame.tx_start", "x")
        trace.record(3.0, "switch.forward", "y")
        assert len(trace.filter("frame.")) == 2
        assert len(trace.filter("switch.")) == 1

    def test_clear_discards_entries(self):
        trace = TraceRecorder()
        trace.record(1.0, "a", "x")
        trace.clear()
        assert len(trace) == 0

    def test_entries_returns_copy(self):
        trace = TraceRecorder()
        trace.record(1.0, "a", "x")
        entries = trace.entries
        entries.clear()
        assert len(trace) == 1
