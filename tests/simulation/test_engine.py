"""The discrete-event simulation engine."""

import pytest

from repro.errors import SchedulingInPastError
from repro.simulation import Simulator


class TestScheduling:
    def test_clock_starts_at_zero_by_default(self):
        assert Simulator().now == 0.0

    def test_clock_can_start_elsewhere(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_schedule_relative_delay(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.5, fired.append, "a")
        sim.run()
        assert fired == ["a"]
        assert sim.now == 1.5

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(2.0, fired.append, "b")
        sim.run()
        assert sim.now == 2.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulingInPastError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_in_the_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SchedulingInPastError):
            sim.schedule_at(5.0, lambda: None)

    def test_zero_delay_fires_immediately(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, fired.append, 1)
        sim.run()
        assert fired == [1]


class TestExecutionOrder:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "late")
        sim.schedule(1.0, order.append, "early")
        sim.schedule(2.0, order.append, "middle")
        sim.run()
        assert order == ["early", "middle", "late"]

    def test_same_time_events_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for label in ("first", "second", "third"):
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == ["first", "second", "third"]

    def test_callbacks_can_schedule_new_events(self):
        sim = Simulator()
        fired = []

        def chain(count):
            fired.append(count)
            if count < 3:
                sim.schedule(1.0, chain, count + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []


class TestRunControls:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "kept")
        sim.schedule(5.0, fired.append, "dropped")
        sim.run(until=2.0)
        assert fired == ["kept"]
        assert sim.now == 2.0
        assert sim.pending_events == 1

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_max_events_limits_processing(self):
        sim = Simulator()
        fired = []
        for index in range(10):
            sim.schedule(float(index), fired.append, index)
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_stop_inside_callback_halts_the_loop(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a"]

    def test_step_processes_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is True
        assert sim.step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for index in range(5):
            sim.schedule(float(index), lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestFastPathScheduling:
    """post/post_at/dispatch_immediate — the model hot-path API."""

    def test_post_fires_like_schedule(self):
        sim = Simulator()
        fired = []
        sim.post(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b"]
        assert sim.events_processed == 2

    def test_post_and_schedule_share_the_sequence_counter(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "event")
        sim.post(1.0, fired.append, "fast")
        sim.schedule(1.0, fired.append, "event-2")
        sim.run()
        assert fired == ["event", "fast", "event-2"]

    def test_post_at_uses_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.post_at(2.5, fired.append, "x")
        sim.run()
        assert sim.now == 2.5
        assert fired == ["x"]

    def test_dispatch_immediate_counts_as_processed(self):
        sim = Simulator()
        fired = []
        sim.dispatch_immediate(fired.append, "now")
        assert fired == ["now"]
        assert sim.events_processed == 1
        assert sim.now == 0.0

    def test_cancelled_event_skipped_in_fast_loop(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "cancelled")
        sim.post(2.0, fired.append, "kept")
        event.cancel()
        sim.run()
        assert fired == ["kept"]
        assert sim.events_processed == 1

    def test_stop_halts_the_fast_loop(self):
        sim = Simulator()
        fired = []
        sim.post(1.0, lambda arg: (fired.append(arg), sim.stop()), "a")
        sim.post(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a"]
        assert sim.pending_events == 1

    def test_bounded_run_handles_fast_entries(self):
        sim = Simulator()
        fired = []
        sim.post(1.0, fired.append, "kept")
        sim.post(5.0, fired.append, "dropped")
        sim.run(until=2.0)
        assert fired == ["kept"]
        assert sim.now == 2.0
        sim2 = Simulator()
        for index in range(5):
            sim2.post(float(index), fired.append, index)
        sim2.run(max_events=2)
        assert sim2.events_processed == 2
