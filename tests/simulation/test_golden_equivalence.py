"""The kernel rewrite must be bit-identical to the reference engine.

Every cell of the golden grid (policies × release scenarios on the small
and paper workloads, plus a drop-forcing cell) is re-simulated and compared
against the digests captured from the pre-rewrite engine: same per-flow
latency samples (order included), same drop counts, same link utilizations
and queue maxima, same number of processed events.  Any optimisation that
changes an event interleaving — and therefore possibly a latency — fails
here instead of silently skewing the bound-vs-simulation exhibits.
"""

from __future__ import annotations

import json

import pytest

from tests.simulation.golden_fixture import (
    GOLDEN_CELLS,
    GRAPH_GOLDEN_CELLS,
    capture_cell,
    capture_graph_cell,
    cell_path,
)


@pytest.mark.parametrize(
    "name,stations,workload_seed,policy,scenario,seed,capacity,shaping",
    GOLDEN_CELLS, ids=[cell[0] for cell in GOLDEN_CELLS])
def test_golden_cell_matches_reference(name, stations, workload_seed, policy,
                                       scenario, seed, capacity, shaping):
    expected = json.loads(cell_path(name).read_text())
    actual = capture_cell(stations, workload_seed, policy, scenario, seed,
                          capacity, shaping)
    # Compare piecewise for actionable failure messages before the full
    # dict equality (which also guards any key added later).
    assert actual["events_processed"] == expected["events_processed"]
    assert actual["instances_sent"] == expected["instances_sent"]
    assert actual["instances_delivered"] == expected["instances_delivered"]
    assert actual["frames_dropped"] == expected["frames_dropped"]
    assert actual["link_utilization"] == expected["link_utilization"]
    assert actual["max_queue_bits"] == expected["max_queue_bits"]
    for flow, digest in expected["flows"].items():
        assert actual["flows"][flow] == digest, f"flow {flow} diverged"
    assert actual == expected


def test_drop_cell_actually_drops():
    """The fixture grid must keep exercising the drop-accounting path."""
    expected = json.loads(cell_path("small-fcfs-drops").read_text())
    assert expected["frames_dropped"] > 0


@pytest.mark.parametrize(
    "name,family,stations,workload_seed,policy,scenario,seed",
    GRAPH_GOLDEN_CELLS, ids=[cell[0] for cell in GRAPH_GOLDEN_CELLS])
def test_graph_golden_cell_matches_reference(name, family, stations,
                                             workload_seed, policy,
                                             scenario, seed):
    """Multi-hop graph topologies replay their committed digests exactly."""
    expected = json.loads(cell_path(name).read_text())
    actual = capture_graph_cell(family, stations, workload_seed, policy,
                                scenario, seed)
    assert actual["events_processed"] == expected["events_processed"]
    assert actual["max_queue_bits"] == expected["max_queue_bits"]
    for flow, digest in expected["flows"].items():
        assert actual["flows"][flow] == digest, f"flow {flow} diverged"
    assert actual == expected


@pytest.mark.parametrize(
    "legacy_name,stations,workload_seed,policy,scenario,seed",
    [("small-fcfs-synchronized", 8, 3, "fcfs", "synchronized", 1),
     ("small-priority-random", 8, 3, "strict-priority", "random", 1),
     ("paper-fcfs-synchronized", 16, 7, "fcfs", "synchronized", 1)],
    ids=["small-fcfs", "small-priority", "paper-fcfs"])
def test_star_as_graph_is_bit_identical_to_legacy(legacy_name, stations,
                                                  workload_seed, policy,
                                                  scenario, seed):
    """The graph ``star`` family reproduces the *legacy* golden files.

    The star expressed as a :class:`GraphTopologySpec` converts to the
    very network the legacy builder produces, so its simulation digest
    must match the committed legacy fixture bit for bit — same latency
    sample hashes, same queue maxima, same event count.
    """
    expected = json.loads(cell_path(legacy_name).read_text())
    actual = capture_graph_cell("star", stations, workload_seed, policy,
                                scenario, seed)
    assert actual == expected
