"""The kernel rewrite must be bit-identical to the reference engine.

Every cell of the golden grid (policies × release scenarios on the small
and paper workloads, plus a drop-forcing cell) is re-simulated and compared
against the digests captured from the pre-rewrite engine: same per-flow
latency samples (order included), same drop counts, same link utilizations
and queue maxima, same number of processed events.  Any optimisation that
changes an event interleaving — and therefore possibly a latency — fails
here instead of silently skewing the bound-vs-simulation exhibits.
"""

from __future__ import annotations

import json

import pytest

from tests.simulation.golden_fixture import (
    GOLDEN_CELLS,
    capture_cell,
    cell_path,
)


@pytest.mark.parametrize(
    "name,stations,workload_seed,policy,scenario,seed,capacity,shaping",
    GOLDEN_CELLS, ids=[cell[0] for cell in GOLDEN_CELLS])
def test_golden_cell_matches_reference(name, stations, workload_seed, policy,
                                       scenario, seed, capacity, shaping):
    expected = json.loads(cell_path(name).read_text())
    actual = capture_cell(stations, workload_seed, policy, scenario, seed,
                          capacity, shaping)
    # Compare piecewise for actionable failure messages before the full
    # dict equality (which also guards any key added later).
    assert actual["events_processed"] == expected["events_processed"]
    assert actual["instances_sent"] == expected["instances_sent"]
    assert actual["instances_delivered"] == expected["instances_delivered"]
    assert actual["frames_dropped"] == expected["frames_dropped"]
    assert actual["link_utilization"] == expected["link_utilization"]
    assert actual["max_queue_bits"] == expected["max_queue_bits"]
    for flow, digest in expected["flows"].items():
        assert actual["flows"][flow] == digest, f"flow {flow} diverged"
    assert actual == expected


def test_drop_cell_actually_drops():
    """The fixture grid must keep exercising the drop-accounting path."""
    expected = json.loads(cell_path("small-fcfs-drops").read_text())
    assert expected["frames_dropped"] > 0
