"""Monte-Carlo simulation campaigns."""

import math

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.flows.priorities import PriorityClass
from repro.simulation.campaign import (
    POLICIES,
    SCENARIOS,
    MonteCarloResult,
    MonteCarloRow,
    SimulationCampaign,
    SimulationCell,
)
from repro.workloads import RealCaseParameters, generate_real_case

#: A small, fast grid reused by most tests (8 stations, 2 seeds).
SMALL = dict(station_count=8, workload_seed=3, seeds=(1, 2))


def small_campaign(**overrides) -> SimulationCampaign:
    return SimulationCampaign(**{**SMALL, **overrides})


class TestGrid:
    def test_cells_cover_the_full_product(self):
        campaign = small_campaign(size_factors=(1, 2))
        cells = campaign.cells()
        assert len(cells) == 2 * len(SCENARIOS) * len(POLICIES) * 2
        assert len(set(cells)) == len(cells)
        assert cells[0] == SimulationCell(
            seed=1, scenario="synchronized", policy="fcfs", size_factor=1)

    def test_cell_order_is_deterministic(self):
        assert small_campaign().cells() == small_campaign().cells()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            small_campaign(scenarios=("warp",))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            small_campaign(policies=("wfq",))

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            small_campaign(seeds=())

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ConfigurationError):
            small_campaign(scenarios=())

    def test_empty_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            small_campaign(policies=())

    def test_empty_size_factors_rejected(self):
        with pytest.raises(ConfigurationError):
            small_campaign(size_factors=())

    def test_nonpositive_size_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            small_campaign(size_factors=(0,))

    def test_explicit_message_set_limits_size_factors(self):
        message_set = generate_real_case(
            RealCaseParameters(station_count=8), seed=3)
        with pytest.raises(ConfigurationError):
            small_campaign(message_set=message_set, size_factors=(1, 2))

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            small_campaign(jobs=0)


class TestRun:
    @pytest.fixture(scope="class")
    def result(self) -> MonteCarloResult:
        return small_campaign(scenarios=("synchronized", "staggered")).run()

    def test_every_cell_simulated(self, result):
        assert result.cells == 2 * 2 * 2
        assert all(outcome.instances_delivered > 0
                   for outcome in result.outcomes)

    def test_rows_aggregate_every_configuration(self, result):
        keys = {(row.scenario, row.policy) for row in result.rows}
        assert keys == {(s, p) for s in ("synchronized", "staggered")
                        for p in POLICIES}
        assert all(row.seeds == 2 for row in result.rows)

    def test_all_bounds_hold_on_the_shaped_workload(self, result):
        assert result.all_bounds_hold
        assert result.frames_dropped == 0
        assert 0 < result.max_tightness <= 1.0

    def test_worst_is_max_over_seeds(self, result):
        for row in result.rows:
            per_seed = [outcome.worst_per_class[row.priority]
                        for outcome in result.outcomes
                        if outcome.cell.scenario == row.scenario
                        and outcome.cell.policy == row.policy
                        and row.priority in outcome.worst_per_class]
            assert row.worst_simulated == max(per_seed)

    def test_synchronized_is_the_tightest_scenario(self, result):
        for policy in POLICIES:
            sync = max(row.tightness for row in result.rows
                       if row.policy == policy
                       and row.scenario == "synchronized")
            staggered = max(row.tightness for row in result.rows
                            if row.policy == policy
                            and row.scenario == "staggered")
            assert sync >= staggered

    def test_run_is_deterministic(self, result):
        again = small_campaign(scenarios=("synchronized", "staggered")).run()
        assert [(r.scenario, r.policy, r.priority, r.worst_simulated,
                 r.mean_simulated, r.samples) for r in again.rows] \
            == [(r.scenario, r.policy, r.priority, r.worst_simulated,
                 r.mean_simulated, r.samples) for r in result.rows]

    def test_rendering_and_csv(self, result, tmp_path):
        table = result.to_table()
        assert "Monte-Carlo bound validation" in table
        assert "### Monte-Carlo bound validation" in result.to_markdown()
        path = tmp_path / "mc.csv"
        result.write_csv(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + len(result.rows)


class TestProcessFanOut:
    def test_jobs_fan_out_matches_single_process(self):
        sequential = small_campaign(scenarios=("synchronized",)).run()
        parallel = small_campaign(scenarios=("synchronized",), jobs=2).run()
        key = lambda rows: [(r.size_factor, r.scenario, r.policy, r.priority,
                             r.worst_simulated, r.mean_simulated, r.samples)
                            for r in rows]
        assert key(sequential.rows) == key(parallel.rows)


class TestExplicitWorkload:
    def test_csv_style_message_set_is_simulated(self):
        message_set = generate_real_case(
            RealCaseParameters(station_count=8), seed=3)
        result = small_campaign(
            message_set=message_set,
            scenarios=("synchronized",)).run()
        assert result.cells == 1 * 2 * 2
        assert result.all_bounds_hold


class TestSizeFactors:
    def test_larger_factor_scales_the_workload(self):
        result = small_campaign(
            scenarios=("synchronized",), policies=("fcfs",),
            seeds=(1,), size_factors=(1, 2),
            duration=units.ms(40)).run()
        small = [o for o in result.outcomes if o.cell.size_factor == 1]
        large = [o for o in result.outcomes if o.cell.size_factor == 2]
        assert large[0].instances_sent > small[0].instances_sent
        factors = {row.size_factor for row in result.rows}
        assert factors == {1, 2}


def _row(**overrides) -> MonteCarloRow:
    """A hand-built aggregated row with sensible finite defaults."""
    fields = dict(size_factor=1, scenario="synchronized", policy="fcfs",
                  priority=PriorityClass.URGENT, seeds=2,
                  analytic_bound=0.004, worst_simulated=0.002,
                  mean_simulated=0.001, samples=10)
    fields.update(overrides)
    return MonteCarloRow(**fields)


class TestNonFiniteTightness:
    """NaN/inf handling of the tightness ratio and its aggregates.

    An unstable configuration has an infinite bound and a sample-free one
    has a NaN worst observation; neither may poison the grid aggregates
    or render as a bogus number.
    """

    def test_finite_row_is_the_plain_ratio(self):
        assert _row().tightness == pytest.approx(0.5)

    def test_infinite_bound_is_nan_not_zero(self):
        row = _row(analytic_bound=float("inf"))
        assert math.isnan(row.tightness)
        assert row.bound_holds  # inf still dominates every observation

    def test_nonpositive_bound_is_nan(self):
        assert math.isnan(_row(analytic_bound=0.0).tightness)
        assert math.isnan(_row(analytic_bound=-1.0).tightness)

    def test_nan_worst_observation_is_nan(self):
        row = _row(worst_simulated=float("nan"),
                   mean_simulated=float("nan"), samples=0)
        assert math.isnan(row.tightness)

    def test_max_tightness_skips_non_finite_rows(self):
        result = MonteCarloResult(rows=[
            _row(),
            _row(priority=PriorityClass.PERIODIC,
                 analytic_bound=float("inf")),
            _row(priority=PriorityClass.SPORADIC,
                 worst_simulated=float("nan"), samples=0),
        ])
        assert result.max_tightness == pytest.approx(0.5)

    def test_max_tightness_sentinel_on_an_all_nan_grid(self):
        result = MonteCarloResult(rows=[
            _row(analytic_bound=float("inf")),
            _row(priority=PriorityClass.PERIODIC, analytic_bound=0.0),
        ])
        assert math.isnan(result.max_tightness)
        assert math.isnan(MonteCarloResult(rows=[]).max_tightness)

    def test_table_renders_nan_tightness_as_a_dash(self):
        result = MonteCarloResult(rows=[
            _row(), _row(priority=PriorityClass.PERIODIC,
                         analytic_bound=float("inf"))])
        table = result.to_table()
        lines = [line for line in table.splitlines() if "P1" in line]
        assert lines and " - " in lines[0]
        assert "nan" not in table
        assert "0.500" in table

    def test_markdown_renders_nan_tightness_as_a_dash(self):
        result = MonteCarloResult(rows=[
            _row(analytic_bound=float("inf"))])
        markdown = result.to_markdown()
        assert "nan" not in markdown
        assert "| - |" in markdown.replace("  ", " ")

    def test_csv_keeps_the_raw_nan_and_inf_values(self, tmp_path):
        result = MonteCarloResult(rows=[
            _row(analytic_bound=float("inf")),
            _row(priority=PriorityClass.PERIODIC,
                 worst_simulated=float("nan"), samples=0)])
        path = tmp_path / "grid.csv"
        result.write_csv(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        assert "inf" in lines[1]
        assert "nan" in lines[2]
