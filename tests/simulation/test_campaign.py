"""Monte-Carlo simulation campaigns."""

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.simulation.campaign import (
    POLICIES,
    SCENARIOS,
    MonteCarloResult,
    SimulationCampaign,
    SimulationCell,
)
from repro.workloads import RealCaseParameters, generate_real_case

#: A small, fast grid reused by most tests (8 stations, 2 seeds).
SMALL = dict(station_count=8, workload_seed=3, seeds=(1, 2))


def small_campaign(**overrides) -> SimulationCampaign:
    return SimulationCampaign(**{**SMALL, **overrides})


class TestGrid:
    def test_cells_cover_the_full_product(self):
        campaign = small_campaign(size_factors=(1, 2))
        cells = campaign.cells()
        assert len(cells) == 2 * len(SCENARIOS) * len(POLICIES) * 2
        assert len(set(cells)) == len(cells)
        assert cells[0] == SimulationCell(
            seed=1, scenario="synchronized", policy="fcfs", size_factor=1)

    def test_cell_order_is_deterministic(self):
        assert small_campaign().cells() == small_campaign().cells()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            small_campaign(scenarios=("warp",))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            small_campaign(policies=("wfq",))

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            small_campaign(seeds=())

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ConfigurationError):
            small_campaign(scenarios=())

    def test_empty_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            small_campaign(policies=())

    def test_empty_size_factors_rejected(self):
        with pytest.raises(ConfigurationError):
            small_campaign(size_factors=())

    def test_nonpositive_size_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            small_campaign(size_factors=(0,))

    def test_explicit_message_set_limits_size_factors(self):
        message_set = generate_real_case(
            RealCaseParameters(station_count=8), seed=3)
        with pytest.raises(ConfigurationError):
            small_campaign(message_set=message_set, size_factors=(1, 2))

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            small_campaign(jobs=0)


class TestRun:
    @pytest.fixture(scope="class")
    def result(self) -> MonteCarloResult:
        return small_campaign(scenarios=("synchronized", "staggered")).run()

    def test_every_cell_simulated(self, result):
        assert result.cells == 2 * 2 * 2
        assert all(outcome.instances_delivered > 0
                   for outcome in result.outcomes)

    def test_rows_aggregate_every_configuration(self, result):
        keys = {(row.scenario, row.policy) for row in result.rows}
        assert keys == {(s, p) for s in ("synchronized", "staggered")
                        for p in POLICIES}
        assert all(row.seeds == 2 for row in result.rows)

    def test_all_bounds_hold_on_the_shaped_workload(self, result):
        assert result.all_bounds_hold
        assert result.frames_dropped == 0
        assert 0 < result.max_tightness <= 1.0

    def test_worst_is_max_over_seeds(self, result):
        for row in result.rows:
            per_seed = [outcome.worst_per_class[row.priority]
                        for outcome in result.outcomes
                        if outcome.cell.scenario == row.scenario
                        and outcome.cell.policy == row.policy
                        and row.priority in outcome.worst_per_class]
            assert row.worst_simulated == max(per_seed)

    def test_synchronized_is_the_tightest_scenario(self, result):
        for policy in POLICIES:
            sync = max(row.tightness for row in result.rows
                       if row.policy == policy
                       and row.scenario == "synchronized")
            staggered = max(row.tightness for row in result.rows
                            if row.policy == policy
                            and row.scenario == "staggered")
            assert sync >= staggered

    def test_run_is_deterministic(self, result):
        again = small_campaign(scenarios=("synchronized", "staggered")).run()
        assert [(r.scenario, r.policy, r.priority, r.worst_simulated,
                 r.mean_simulated, r.samples) for r in again.rows] \
            == [(r.scenario, r.policy, r.priority, r.worst_simulated,
                 r.mean_simulated, r.samples) for r in result.rows]

    def test_rendering_and_csv(self, result, tmp_path):
        table = result.to_table()
        assert "Monte-Carlo bound validation" in table
        assert "### Monte-Carlo bound validation" in result.to_markdown()
        path = tmp_path / "mc.csv"
        result.write_csv(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + len(result.rows)


class TestProcessFanOut:
    def test_jobs_fan_out_matches_single_process(self):
        sequential = small_campaign(scenarios=("synchronized",)).run()
        parallel = small_campaign(scenarios=("synchronized",), jobs=2).run()
        key = lambda rows: [(r.size_factor, r.scenario, r.policy, r.priority,
                             r.worst_simulated, r.mean_simulated, r.samples)
                            for r in rows]
        assert key(sequential.rows) == key(parallel.rows)


class TestExplicitWorkload:
    def test_csv_style_message_set_is_simulated(self):
        message_set = generate_real_case(
            RealCaseParameters(station_count=8), seed=3)
        result = small_campaign(
            message_set=message_set,
            scenarios=("synchronized",)).run()
        assert result.cells == 1 * 2 * 2
        assert result.all_bounds_hold


class TestSizeFactors:
    def test_larger_factor_scales_the_workload(self):
        result = small_campaign(
            scenarios=("synchronized",), policies=("fcfs",),
            seeds=(1,), size_factors=(1, 2),
            duration=units.ms(40)).run()
        small = [o for o in result.outcomes if o.cell.size_factor == 1]
        large = [o for o in result.outcomes if o.cell.size_factor == 2]
        assert large[0].instances_sent > small[0].instances_sent
        factors = {row.size_factor for row in result.rows}
        assert factors == {1, 2}
