"""MIL-STD-1553B word timing."""

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.milstd1553 import (
    BUS_RATE,
    INTERMESSAGE_GAP,
    RESPONSE_TIME,
    WORD_TIME,
    data_word_count,
)
from repro.milstd1553.words import MAX_DATA_WORDS, data_words_duration


class TestConstants:
    def test_bus_rate_is_one_megabit(self):
        assert BUS_RATE == units.mbps(1)

    def test_word_time_is_twenty_microseconds(self):
        assert WORD_TIME == pytest.approx(units.us(20))

    def test_response_time_is_the_standard_worst_case(self):
        assert RESPONSE_TIME == pytest.approx(units.us(12))

    def test_intermessage_gap(self):
        assert INTERMESSAGE_GAP == pytest.approx(units.us(4))

    def test_max_data_words(self):
        assert MAX_DATA_WORDS == 32


class TestDataWordCount:
    def test_exact_word_multiple(self):
        assert data_word_count(units.words1553(8)) == 8

    def test_partial_word_rounds_up(self):
        assert data_word_count(17) == 2

    def test_single_bit_needs_one_word(self):
        assert data_word_count(1) == 1

    def test_large_message_can_exceed_32_words(self):
        assert data_word_count(units.words1553(64)) == 64

    def test_non_positive_size_rejected(self):
        with pytest.raises(ConfigurationError):
            data_word_count(0)


class TestDataWordsDuration:
    def test_duration_scales_with_count(self):
        assert data_words_duration(10) == pytest.approx(10 * WORD_TIME)

    def test_zero_words_is_zero_time(self):
        assert data_words_duration(0) == 0.0

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            data_words_duration(-1)
