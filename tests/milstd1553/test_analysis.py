"""Closed-form 1553B response-time analysis."""

import pytest

from repro import MajorFrameSchedule, Message, MessageSet, units
from repro.milstd1553 import Milstd1553Analysis, Milstd1553BusSimulator


def build_schedule(messages):
    return MajorFrameSchedule(MessageSet(messages, name="analysis-test"))


def periodic(name, period_ms=20, words=8, source="rt-1"):
    return Message.periodic(name, period=units.ms(period_ms),
                            size=units.words1553(words), source=source,
                            destination="rt-9")


def sporadic(name, words=4, deadline_ms=40, source="rt-2"):
    deadline = None if deadline_ms is None else units.ms(deadline_ms)
    return Message.sporadic(name, min_interarrival=units.ms(20),
                            size=units.words1553(words), source=source,
                            destination="rt-9", deadline=deadline)


class TestPeriodicBounds:
    def test_single_message_bound_is_its_transaction_time(self):
        schedule = build_schedule([periodic("solo", 20, 8)])
        analysis = Milstd1553Analysis(schedule)
        bound = analysis.bound_for(schedule.message_set["solo"])
        from repro.milstd1553.transaction import transactions_for_message
        expected = sum(t.duration for t in transactions_for_message(
            schedule.message_set["solo"], schedule.transfer_format))
        assert bound.bound == pytest.approx(expected)
        assert bound.waiting_time == 0.0
        assert bound.guaranteed

    def test_bound_includes_preceding_transactions(self):
        schedule = build_schedule([periodic("first", 20, 32),
                                   periodic("second", 20, 32)])
        analysis = Milstd1553Analysis(schedule)
        bounds = analysis.all_bounds()
        assert max(b.bound for b in bounds.values()) > \
            min(b.bound for b in bounds.values())

    def test_periodic_bounds_fit_in_a_minor_frame_for_a_feasible_schedule(self):
        schedule = build_schedule([periodic(f"m{i}", 40, 16)
                                   for i in range(10)])
        analysis = Milstd1553Analysis(schedule)
        for message in schedule.message_set.periodic():
            assert analysis.bound_for(message).bound <= units.ms(20)


class TestSporadicBounds:
    def test_sporadic_bound_exceeds_one_minor_frame(self):
        schedule = build_schedule([periodic("p", 20, 8), sporadic("s")])
        analysis = Milstd1553Analysis(schedule)
        bound = analysis.bound_for(schedule.message_set["s"])
        assert bound.waiting_time == pytest.approx(units.ms(20))
        assert bound.bound > units.ms(20)
        assert bound.guaranteed

    def test_background_sporadic_is_not_guaranteed(self):
        schedule = build_schedule([sporadic("bg", deadline_ms=None)])
        analysis = Milstd1553Analysis(schedule)
        bound = analysis.bound_for(schedule.message_set["bg"])
        assert not bound.guaranteed

    def test_urgent_sporadic_violates_its_3ms_deadline(self):
        # 20 ms polling cannot guarantee a 3 ms response time — one of the
        # motivations for moving away from the shared bus.
        schedule = build_schedule([sporadic("urgent", deadline_ms=3)])
        analysis = Milstd1553Analysis(schedule)
        violations = analysis.violations()
        assert [b.name for b in violations] == ["urgent"]


class TestAgainstSimulation:
    def test_bounds_dominate_simulated_latencies(self, real_case):
        schedule = MajorFrameSchedule(real_case)
        analysis = Milstd1553Analysis(schedule)
        bounds = analysis.all_bounds()
        simulator = Milstd1553BusSimulator(real_case, schedule=schedule,
                                           sporadic_scenario="greedy")
        results = simulator.run(duration=units.ms(640))
        for message in real_case:
            bound = bounds[message.name]
            if not bound.guaranteed:
                continue
            observed = results.message_latencies[message.name].maximum
            if observed != observed:  # NaN: nothing delivered
                continue
            assert observed <= bound.bound + 1e-6, message.name

    def test_worst_bound_and_violations_on_the_real_case(self, real_case):
        analysis = Milstd1553Analysis(MajorFrameSchedule(real_case))
        assert analysis.worst_bound() > units.ms(20)
        # The urgent 3 ms class is not satisfiable with 20 ms polling.
        assert len(analysis.violations()) >= 16


class TestMutationAfterFirstQuery:
    def test_sporadic_added_after_a_query_is_analysed_fresh(self):
        from repro import Message, MessageSet, units
        from repro.milstd1553.schedule import MajorFrameSchedule

        message_set = MessageSet([
            Message.periodic("nav", period=units.ms(20),
                             size=units.words1553(8),
                             source="s0", destination="sink"),
            Message.sporadic("alarm", min_interarrival=units.ms(20),
                             size=units.words1553(2),
                             source="s1", destination="sink",
                             deadline=units.ms(3)),
        ])
        schedule = MajorFrameSchedule(message_set)
        analysis = Milstd1553Analysis(schedule)
        first = analysis.bound_for(message_set["alarm"])
        # "a0" sorts before "s1", so its poll precedes alarm's terminal.
        message_set.add(Message.sporadic(
            "late", min_interarrival=units.ms(40),
            size=units.words1553(4), source="a0", destination="sink",
            deadline=units.ms(40)))
        # The new terminal is polled and analysable, not an error...
        late = analysis.bound_for(message_set["late"])
        assert late.bound > 0
        # ...and existing bounds account for the extra poll slot.
        assert analysis.bound_for(message_set["alarm"]).bound > first.bound
