"""1553B transactions and transfer formats."""

import pytest

from repro import Message, units
from repro.errors import ConfigurationError
from repro.milstd1553 import Transaction, TransferFormat
from repro.milstd1553.transaction import transactions_for_message
from repro.milstd1553.words import (
    INTERMESSAGE_GAP,
    RESPONSE_TIME,
    WORD_TIME,
)


def message(words=16):
    return Message.periodic("nav", period=units.ms(20),
                            size=units.words1553(words),
                            source="rt-1", destination="rt-2")


class TestTransactionDurations:
    def test_bc_to_rt_duration(self):
        transaction = Transaction(message=message(4),
                                  transfer_format=TransferFormat.BC_TO_RT,
                                  data_words=4)
        expected = (1 + 4 + 1) * WORD_TIME + RESPONSE_TIME + INTERMESSAGE_GAP
        assert transaction.duration == pytest.approx(expected)

    def test_rt_to_bc_duration_equals_bc_to_rt(self):
        receive = Transaction(message=message(4),
                              transfer_format=TransferFormat.BC_TO_RT,
                              data_words=4)
        transmit = Transaction(message=message(4),
                               transfer_format=TransferFormat.RT_TO_BC,
                               data_words=4)
        assert receive.duration == pytest.approx(transmit.duration)

    def test_rt_to_rt_has_two_commands_and_two_responses(self):
        transaction = Transaction(message=message(4),
                                  transfer_format=TransferFormat.RT_TO_RT,
                                  data_words=4)
        expected = (2 + 1 + 4 + 1) * WORD_TIME + 2 * RESPONSE_TIME \
            + INTERMESSAGE_GAP
        assert transaction.duration == pytest.approx(expected)

    def test_duration_grows_with_word_count(self):
        small = Transaction(message=message(1),
                            transfer_format=TransferFormat.RT_TO_RT,
                            data_words=1)
        large = Transaction(message=message(32),
                            transfer_format=TransferFormat.RT_TO_RT,
                            data_words=32)
        assert large.duration - small.duration == pytest.approx(
            31 * WORD_TIME)

    def test_32_word_rt_to_rt_fits_in_a_millisecond(self):
        transaction = Transaction(message=message(32),
                                  transfer_format=TransferFormat.RT_TO_RT,
                                  data_words=32)
        assert transaction.duration < units.ms(1)


class TestValidation:
    def test_zero_words_rejected(self):
        with pytest.raises(ConfigurationError):
            Transaction(message=message(), data_words=0,
                        transfer_format=TransferFormat.RT_TO_RT)

    def test_more_than_32_words_rejected(self):
        with pytest.raises(ConfigurationError):
            Transaction(message=message(), data_words=33,
                        transfer_format=TransferFormat.RT_TO_RT)

    def test_bad_fragment_indexing_rejected(self):
        with pytest.raises(ConfigurationError):
            Transaction(message=message(), data_words=4,
                        transfer_format=TransferFormat.RT_TO_RT,
                        part_index=2, part_count=2)


class TestTransactionsForMessage:
    def test_small_message_is_a_single_transaction(self):
        transactions = transactions_for_message(message(16))
        assert len(transactions) == 1
        assert transactions[0].data_words == 16
        assert transactions[0].is_last_part
        assert transactions[0].name == "nav"

    def test_large_message_is_split_into_32_word_transactions(self):
        transactions = transactions_for_message(message(70))
        assert [t.data_words for t in transactions] == [32, 32, 6]
        assert transactions[-1].is_last_part
        assert not transactions[0].is_last_part
        assert transactions[0].name == "nav#0"

    def test_split_preserves_total_word_count(self):
        transactions = transactions_for_message(message(100))
        assert sum(t.data_words for t in transactions) == 100

    def test_transfer_format_is_propagated(self):
        transactions = transactions_for_message(
            message(40), transfer_format=TransferFormat.BC_TO_RT)
        assert all(t.transfer_format is TransferFormat.BC_TO_RT
                   for t in transactions)
