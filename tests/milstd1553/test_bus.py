"""The 1553B bus simulator."""

import pytest

from repro import (
    MajorFrameSchedule,
    Message,
    MessageSet,
    Milstd1553BusSimulator,
    units,
)
from repro.errors import ConfigurationError


def simple_set():
    return MessageSet([
        Message.periodic("fast", period=units.ms(20),
                         size=units.words1553(8),
                         source="rt-1", destination="rt-2"),
        Message.periodic("slow", period=units.ms(160),
                         size=units.words1553(16),
                         source="rt-2", destination="rt-3"),
        Message.sporadic("alarm", min_interarrival=units.ms(20),
                         size=units.words1553(2),
                         source="rt-3", destination="rt-1",
                         deadline=units.ms(40)),
    ], name="simple")


class TestBasicOperation:
    def test_periodic_delivery_counts(self):
        simulator = Milstd1553BusSimulator(simple_set())
        results = simulator.run(duration=units.ms(320))
        # Two major frames: "fast" delivered 16 times, "slow" twice.
        assert results.message_latencies["fast"].count == 16
        assert results.message_latencies["slow"].count == 2

    def test_greedy_sporadic_served_every_minor_frame(self):
        simulator = Milstd1553BusSimulator(simple_set(),
                                           sporadic_scenario="greedy")
        results = simulator.run(duration=units.ms(320))
        assert results.message_latencies["alarm"].count == 16

    def test_everything_released_is_delivered(self):
        simulator = Milstd1553BusSimulator(simple_set())
        results = simulator.run(duration=units.ms(320))
        assert results.instances_delivered == results.instances_released

    def test_no_overrun_on_a_feasible_schedule(self):
        simulator = Milstd1553BusSimulator(simple_set())
        results = simulator.run(duration=units.ms(640))
        assert results.minor_frame_overruns == 0

    def test_bus_utilization_is_sane(self):
        simulator = Milstd1553BusSimulator(simple_set())
        results = simulator.run(duration=units.ms(320))
        assert 0 < results.bus_utilization < 0.2

    def test_polls_issued_every_minor_frame(self):
        simulator = Milstd1553BusSimulator(simple_set())
        results = simulator.run(duration=units.ms(160))
        # One polled terminal (rt-3), eight minor frames.
        assert results.polls_issued == 8

    def test_latencies_are_positive_and_below_a_minor_frame(self):
        simulator = Milstd1553BusSimulator(simple_set())
        results = simulator.run(duration=units.ms(320))
        summary = results.message_summary("fast")
        assert summary.minimum > 0
        assert summary.maximum < units.ms(20)

    def test_random_scenario_is_reproducible(self):
        first = Milstd1553BusSimulator(simple_set(),
                                       sporadic_scenario="random",
                                       seed=5).run(duration=units.ms(320))
        second = Milstd1553BusSimulator(simple_set(),
                                        sporadic_scenario="random",
                                        seed=5).run(duration=units.ms(320))
        assert first.message_latencies["alarm"].samples == \
            second.message_latencies["alarm"].samples

    def test_random_scenario_releases_fewer_instances_than_greedy(self):
        greedy = Milstd1553BusSimulator(simple_set(),
                                        sporadic_scenario="greedy",
                                        seed=5).run(duration=units.ms(640))
        random = Milstd1553BusSimulator(simple_set(),
                                        sporadic_scenario="random",
                                        seed=5).run(duration=units.ms(640))
        assert random.instances_released < greedy.instances_released


class TestPriorityOfSporadicService:
    def test_background_deferred_under_pressure(self):
        # A heavy periodic load plus a large background transfer: the
        # background message must never cause a minor-frame overrun.
        messages = [
            Message.periodic(f"p{i}", period=units.ms(20),
                             size=units.words1553(32),
                             source="rt-1", destination="rt-2")
            for i in range(20)
        ]
        messages.append(Message.sporadic(
            "bulk", min_interarrival=units.ms(20),
            size=units.words1553(64), source="rt-3", destination="rt-1",
            deadline=None))
        simulator = Milstd1553BusSimulator(MessageSet(messages))
        results = simulator.run(duration=units.ms(320))
        assert results.minor_frame_overruns == 0


class TestValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            Milstd1553BusSimulator(simple_set(), sporadic_scenario="bursty")

    def test_invalid_duration_rejected(self):
        simulator = Milstd1553BusSimulator(simple_set())
        with pytest.raises(ConfigurationError):
            simulator.run(duration=-1.0)

    def test_results_property_requires_run(self):
        simulator = Milstd1553BusSimulator(simple_set())
        with pytest.raises(ConfigurationError):
            __ = simulator.results

    def test_accepts_prebuilt_schedule(self):
        message_set = simple_set()
        schedule = MajorFrameSchedule(message_set)
        simulator = Milstd1553BusSimulator(message_set, schedule=schedule)
        assert simulator.schedule is schedule
