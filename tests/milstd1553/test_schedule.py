"""Major/minor frame schedule construction."""

import pytest

from repro import MajorFrameSchedule, Message, MessageSet, units
from repro.errors import InvalidScheduleError


def build_set(messages):
    return MessageSet(messages, name="schedule-test")


def periodic(name, period_ms, words, source="rt-1", destination="rt-2"):
    return Message.periodic(name, period=units.ms(period_ms),
                            size=units.words1553(words), source=source,
                            destination=destination)


def sporadic(name, words=4, deadline_ms=40, source="rt-3"):
    deadline = None if deadline_ms is None else units.ms(deadline_ms)
    return Message.sporadic(name, min_interarrival=units.ms(20),
                            size=units.words1553(words), source=source,
                            destination="rt-2", deadline=deadline)


class TestFrameStructure:
    def test_paper_defaults(self):
        schedule = MajorFrameSchedule(build_set([periodic("m", 20, 4)]))
        assert schedule.minor_frame == pytest.approx(units.ms(20))
        assert schedule.major_frame == pytest.approx(units.ms(160))
        assert schedule.minor_frame_count == 8

    def test_major_frame_must_be_a_multiple_of_the_minor_frame(self):
        with pytest.raises(InvalidScheduleError):
            MajorFrameSchedule(build_set([periodic("m", 20, 4)]),
                               minor_frame=units.ms(20),
                               major_frame=units.ms(150))

    def test_period_below_minor_frame_rejected(self):
        with pytest.raises(InvalidScheduleError):
            MajorFrameSchedule(build_set([periodic("fast", 10, 4)]))


class TestPeriodicPlacement:
    def test_20ms_message_in_every_minor_frame(self):
        schedule = MajorFrameSchedule(build_set([periodic("fast", 20, 4)]))
        assert schedule.interval_of("fast") == 1
        assert all(slot.transactions for slot in schedule.slots)

    def test_160ms_message_in_one_minor_frame_per_major(self):
        schedule = MajorFrameSchedule(build_set([periodic("slow", 160, 4)]))
        assert schedule.interval_of("slow") == 8
        carrying = [slot for slot in schedule.slots if slot.transactions]
        assert len(carrying) == 1

    def test_interval_never_exceeds_the_period(self):
        # A 50 ms period does not divide the 20 ms grid: the message must be
        # transferred at least every 40 ms (interval 2), not every 60 ms.
        schedule = MajorFrameSchedule(build_set([periodic("odd", 50, 4)]))
        assert schedule.interval_of("odd") * schedule.minor_frame <= \
            units.ms(50) + 1e-12

    def test_phases_balance_the_load(self):
        messages = [periodic(f"m{i}", 160, 32) for i in range(8)]
        schedule = MajorFrameSchedule(build_set(messages))
        loads = [slot.periodic_duration() for slot in schedule.slots]
        # Eight slow messages of identical size spread over eight minor
        # frames: every minor frame carries exactly one.
        assert all(len(slot.transactions) == 1 for slot in schedule.slots)
        assert max(loads) == pytest.approx(min(loads))

    def test_split_message_appears_fully_in_its_frames(self):
        schedule = MajorFrameSchedule(build_set([periodic("big", 40, 70)]))
        for slot in schedule.slots:
            if slot.transactions:
                assert sum(t.data_words for t in slot.transactions) == 70


class TestSporadicAccounting:
    def test_polled_terminals_are_the_sporadic_sources(self):
        schedule = MajorFrameSchedule(build_set([
            periodic("p", 20, 4),
            sporadic("s1", source="rt-3"),
            sporadic("s2", source="rt-4"),
        ]))
        assert schedule.polled_terminals() == ["rt-3", "rt-4"]

    def test_polling_duration_scales_with_terminals(self):
        one = MajorFrameSchedule(build_set([sporadic("s1", source="rt-3")]))
        two = MajorFrameSchedule(build_set([
            sporadic("s1", source="rt-3"), sporadic("s2", source="rt-4")]))
        assert two.polling_duration() == pytest.approx(
            2 * one.polling_duration())

    def test_background_sporadic_is_not_reserved(self):
        schedule = MajorFrameSchedule(build_set([
            sporadic("hard", deadline_ms=40),
            sporadic("soft", deadline_ms=None, source="rt-4"),
        ]))
        reserved_names = {m.name for m in schedule.reserved_sporadic()}
        assert reserved_names == {"hard"}

    def test_worst_case_sporadic_duration_counts_reserved_only(self):
        with_background = MajorFrameSchedule(build_set([
            sporadic("hard", words=8, deadline_ms=40),
            sporadic("soft", words=32, deadline_ms=None, source="rt-4"),
        ]))
        without_background = MajorFrameSchedule(build_set([
            sporadic("hard", words=8, deadline_ms=40),
        ]))
        assert with_background.worst_case_sporadic_duration() == \
            pytest.approx(without_background.worst_case_sporadic_duration())


class TestFeasibility:
    def test_light_schedule_is_feasible(self):
        schedule = MajorFrameSchedule(build_set([
            periodic("p1", 20, 8), periodic("p2", 40, 16),
            sporadic("s1", words=4),
        ]))
        assert schedule.is_feasible()
        schedule.validate()

    def test_overloaded_minor_frame_detected(self):
        # Forty 32-word messages every 20 ms need ~30 ms of bus time per
        # minor frame: infeasible.
        messages = [periodic(f"m{i}", 20, 32) for i in range(40)]
        schedule = MajorFrameSchedule(build_set(messages))
        assert not schedule.is_feasible()
        with pytest.raises(InvalidScheduleError):
            schedule.validate()

    def test_utilizations_match_durations(self):
        schedule = MajorFrameSchedule(build_set([periodic("p", 20, 8)]))
        for duration, utilization in zip(schedule.minor_frame_durations(),
                                         schedule.utilizations()):
            assert utilization == pytest.approx(duration / units.ms(20))

    def test_summary_fields(self):
        schedule = MajorFrameSchedule(build_set([
            periodic("p", 20, 8), sporadic("s"),
        ]))
        summary = schedule.summary()
        assert summary["minor_frames"] == 8
        assert summary["periodic_messages"] == 1
        assert summary["polled_terminals"] == 1
        assert summary["feasible"] is True

    def test_real_case_schedule_is_feasible(self, real_case):
        schedule = MajorFrameSchedule(real_case)
        assert schedule.is_feasible()
        assert 0.5 < schedule.summary()["max_utilization"] <= 1.0
