"""Ethernet frames and message instances."""

import pytest

from repro import Message, PriorityClass, units
from repro.errors import ConfigurationError
from repro.ethernet.frame import (
    MAX_PAYLOAD_BYTES,
    MIN_PAYLOAD_BYTES,
    MessageInstance,
    frame_overhead_bits,
    frames_for_instance,
    on_wire_bits,
    wire_burst,
)


def message(size_bits=256):
    return Message.periodic("nav", period=units.ms(20), size=size_bits,
                            source="a", destination="b")


def instance(size_bits=256):
    return MessageInstance(message=message(size_bits), sequence=0,
                           release_time=0.0)


class TestFrameSizes:
    def test_overhead_is_42_bytes(self):
        # preamble 8 + MACs 12 + 802.1Q 4 + ethertype 2 + FCS 4 + IFG 12
        assert frame_overhead_bits() == 42 * 8

    def test_small_payload_padded_to_minimum(self):
        assert on_wire_bits(8) == MIN_PAYLOAD_BYTES * 8 + frame_overhead_bits()

    def test_large_payload_not_padded(self):
        assert on_wire_bits(1000 * 8) == 1000 * 8 + frame_overhead_bits()

    def test_non_positive_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            on_wire_bits(0)

    def test_wire_burst_single_frame(self):
        assert wire_burst(message(256)) == on_wire_bits(256)

    def test_wire_burst_fragmented_message(self):
        size = 2 * MAX_PAYLOAD_BYTES * 8 + 80
        burst = wire_burst(message(size))
        expected = 2 * on_wire_bits(MAX_PAYLOAD_BYTES * 8) + on_wire_bits(80)
        assert burst == pytest.approx(expected)


class TestFragmentation:
    def test_small_message_is_one_frame(self):
        frames = frames_for_instance(instance(256), PriorityClass.PERIODIC)
        assert len(frames) == 1
        assert frames[0].is_last_fragment

    def test_large_message_is_fragmented(self):
        size = int(2.5 * MAX_PAYLOAD_BYTES * 8)
        frames = frames_for_instance(instance(size), PriorityClass.PERIODIC)
        assert len(frames) == 3
        assert [frame.fragment_index for frame in frames] == [0, 1, 2]
        assert frames[-1].is_last_fragment
        assert not frames[0].is_last_fragment

    def test_fragments_cover_the_whole_payload(self):
        size = int(2.5 * MAX_PAYLOAD_BYTES * 8)
        frames = frames_for_instance(instance(size), PriorityClass.PERIODIC)
        assert sum(frame.payload_bits for frame in frames) == pytest.approx(size)

    def test_priority_is_carried_in_every_fragment(self):
        frames = frames_for_instance(instance(256), PriorityClass.URGENT)
        assert all(frame.priority is PriorityClass.URGENT for frame in frames)

    def test_frame_ids_are_unique(self):
        frames = frames_for_instance(instance(int(3e4)),
                                     PriorityClass.PERIODIC)
        ids = [frame.frame_id for frame in frames]
        assert len(set(ids)) == len(ids)


class TestFrameProperties:
    def test_addresses_proxy_the_message(self):
        frame = frames_for_instance(instance(), PriorityClass.PERIODIC)[0]
        assert frame.source == "a"
        assert frame.destination == "b"
        assert frame.flow_name == "nav"

    def test_transmission_time(self):
        frame = frames_for_instance(instance(256), PriorityClass.PERIODIC)[0]
        assert frame.transmission_time(units.mbps(10)) == pytest.approx(
            frame.size / 1e7)

    def test_size_includes_padding_and_overhead(self):
        frame = frames_for_instance(instance(8), PriorityClass.PERIODIC)[0]
        assert frame.size == on_wire_bits(8)


class TestMessageInstance:
    def test_deadline_time(self):
        msg = Message.sporadic("alarm", min_interarrival=units.ms(20),
                               size=32, source="a", destination="b",
                               deadline=units.ms(3))
        inst = MessageInstance(message=msg, sequence=0, release_time=0.010)
        assert inst.deadline_time == pytest.approx(0.013)

    def test_no_deadline_means_none(self):
        msg = Message.sporadic("bulk", min_interarrival=units.ms(160),
                               size=32, source="a", destination="b")
        inst = MessageInstance(message=msg, sequence=0, release_time=0.0)
        assert inst.deadline_time is None

    def test_instance_ids_are_unique(self):
        first = instance()
        second = instance()
        assert first.instance_id != second.instance_id
