"""Store-and-forward switches."""

import pytest

from repro import Message, PriorityClass, units
from repro.errors import ConfigurationError
from repro.ethernet.frame import MessageInstance, frames_for_instance
from repro.ethernet.link import LinkTransmitter
from repro.ethernet.switch import EthernetSwitch
from repro.shaping import FifoQueue
from repro.simulation import Simulator


def make_frame(destination="rx"):
    message = Message.periodic("nav", period=units.ms(20),
                               size=units.words1553(16),
                               source="tx", destination=destination)
    instance = MessageInstance(message=message, sequence=0, release_time=0.0)
    return frames_for_instance(instance, PriorityClass.PERIODIC)[0]


def switch_with_port(simulator, technology_delay=0.0):
    delivered = []
    switch = EthernetSwitch(simulator, "sw",
                            technology_delay=technology_delay)
    port = LinkTransmitter(simulator=simulator, name="sw->rx",
                           capacity=units.mbps(10), propagation_delay=0.0,
                           queue=FifoQueue(), deliver=delivered.append)
    switch.attach_output_port("rx", port)
    switch.add_forwarding_entry("rx", "rx")
    return switch, delivered


class TestRelaying:
    def test_frame_forwarded_to_the_right_port(self):
        sim = Simulator()
        switch, delivered = switch_with_port(sim)
        frame = make_frame()
        switch.receive(frame)
        sim.run()
        assert delivered == [frame]
        assert switch.frames_relayed.value == 1

    def test_technology_delay_applied(self):
        sim = Simulator()
        switch, delivered = switch_with_port(sim,
                                             technology_delay=units.us(100))
        frame = make_frame()
        switch.receive(frame)
        sim.run()
        assert sim.now == pytest.approx(
            units.us(100) + frame.size / units.mbps(10))

    def test_unknown_destination_raises(self):
        sim = Simulator()
        switch, __ = switch_with_port(sim)
        frame = make_frame(destination="stranger")
        switch.receive(frame)
        with pytest.raises(ConfigurationError):
            sim.run()


class TestConfiguration:
    def test_duplicate_port_rejected(self):
        sim = Simulator()
        switch, __ = switch_with_port(sim)
        other = LinkTransmitter(simulator=sim, name="sw->rx2",
                                capacity=units.mbps(10),
                                propagation_delay=0.0, queue=FifoQueue(),
                                deliver=lambda frame: None)
        with pytest.raises(ConfigurationError):
            switch.attach_output_port("rx", other)

    def test_forwarding_to_unknown_port_rejected(self):
        sim = Simulator()
        switch, __ = switch_with_port(sim)
        with pytest.raises(ConfigurationError):
            switch.add_forwarding_entry("rx2", "missing-port")

    def test_conflicting_forwarding_entries_rejected(self):
        sim = Simulator()
        switch, __ = switch_with_port(sim)
        other = LinkTransmitter(simulator=sim, name="sw->alt",
                                capacity=units.mbps(10),
                                propagation_delay=0.0, queue=FifoQueue(),
                                deliver=lambda frame: None)
        switch.attach_output_port("alt", other)
        with pytest.raises(ConfigurationError):
            switch.add_forwarding_entry("rx", "alt")

    def test_idempotent_forwarding_entry_allowed(self):
        sim = Simulator()
        switch, __ = switch_with_port(sim)
        switch.add_forwarding_entry("rx", "rx")  # same entry again

    def test_negative_technology_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            EthernetSwitch(Simulator(), "sw", technology_delay=-1e-6)

    def test_output_port_accessors(self):
        sim = Simulator()
        switch, __ = switch_with_port(sim)
        assert "rx" in switch.output_ports
        assert switch.output_port("rx").name == "sw->rx"
