"""The assembled switched-Ethernet simulation."""

import pytest

from repro import EthernetNetworkSimulator, Message, PriorityClass, units
from repro.errors import ConfigurationError, SimulationNotRunError
from repro.topology import dual_switch_topology, single_switch_star


def star_messages():
    return [
        Message.periodic("nav", period=units.ms(20),
                         size=units.words1553(16),
                         source="station-00", destination="station-01"),
        Message.sporadic("alarm", min_interarrival=units.ms(20),
                         size=units.words1553(2),
                         source="station-02", destination="station-01",
                         deadline=units.ms(3)),
        Message.sporadic("bulk", min_interarrival=units.ms(160),
                         size=units.bytes_(3000),
                         source="station-03", destination="station-00"),
    ]


class TestBasicOperation:
    def test_all_instances_delivered_without_drops(self):
        network = single_switch_star(4)
        simulator = EthernetNetworkSimulator(network, star_messages(),
                                             policy="strict-priority")
        results = simulator.run(duration=units.ms(100))
        assert results.instances_sent > 0
        assert results.instances_delivered == results.instances_sent
        assert results.frames_dropped == 0
        assert results.delivery_ratio == pytest.approx(1.0)

    def test_expected_instance_count(self):
        network = single_switch_star(4)
        simulator = EthernetNetworkSimulator(network, star_messages(),
                                             policy="fcfs")
        results = simulator.run(duration=units.ms(100))
        # nav: 5 instances, alarm: 5, bulk: 1 (greedy synchronised sources).
        assert results.instances_sent == 11

    def test_latencies_recorded_per_flow_and_per_class(self):
        network = single_switch_star(4)
        simulator = EthernetNetworkSimulator(network, star_messages())
        results = simulator.run(duration=units.ms(100))
        assert results.flow_summary("nav").count == 5
        assert results.class_summary(PriorityClass.URGENT).count == 5
        assert results.worst_latency("nav") > 0

    def test_link_utilization_reported(self):
        network = single_switch_star(4)
        simulator = EthernetNetworkSimulator(network, star_messages())
        results = simulator.run(duration=units.ms(100))
        uplink = results.link_utilization["station-00->switch-0"]
        assert 0 < uplink < 1
        # The downlink toward the destination also carried traffic.
        assert results.link_utilization["switch-0->station-01"] > 0

    def test_results_property_requires_run(self):
        network = single_switch_star(4)
        simulator = EthernetNetworkSimulator(network, star_messages())
        with pytest.raises(SimulationNotRunError):
            __ = simulator.results

    def test_latency_includes_shaping_and_relaying(self):
        network = single_switch_star(4, technology_delay=units.us(16))
        simulator = EthernetNetworkSimulator(network, star_messages())
        results = simulator.run(duration=units.ms(100))
        from repro.ethernet.frame import wire_burst
        nav = next(m for m in star_messages() if m.name == "nav")
        minimum = 2 * wire_burst(nav) / units.mbps(10) + units.us(16)
        assert results.flow_summary("nav").minimum >= minimum - 1e-9


class TestPoliciesAndScenarios:
    def test_priority_policy_helps_the_urgent_class_under_contention(self):
        # The same station emits several large background messages plus one
        # urgent alarm (listed last, so under FCFS it queues behind them at
        # the station's uplink multiplexer); the strict-priority multiplexer
        # lets the alarm overtake everything that has not started
        # transmission yet.
        messages = [
            Message.sporadic(f"bulk-{index}", min_interarrival=units.ms(40),
                             size=units.bytes_(1500),
                             source="station-01", destination="station-00")
            for index in range(3)
        ]
        messages.append(Message.sporadic(
            "alarm", min_interarrival=units.ms(20),
            size=units.words1553(2),
            source="station-01", destination="station-00",
            deadline=units.ms(3)))
        network = single_switch_star(4)
        fcfs = EthernetNetworkSimulator(network, messages, policy="fcfs",
                                        scenario="synchronized").run(
            duration=units.ms(80))
        priority = EthernetNetworkSimulator(network, messages,
                                            policy="strict-priority",
                                            scenario="synchronized").run(
            duration=units.ms(80))
        assert priority.worst_class_latency(PriorityClass.URGENT) < \
            fcfs.worst_class_latency(PriorityClass.URGENT)

    def test_staggered_scenario_reduces_contention(self):
        network = single_switch_star(4)
        synchronized = EthernetNetworkSimulator(
            network, star_messages(), scenario="synchronized").run(
            duration=units.ms(160))
        staggered = EthernetNetworkSimulator(
            network, star_messages(), scenario="staggered", seed=4).run(
            duration=units.ms(160))
        assert staggered.class_summary(PriorityClass.PERIODIC).maximum <= \
            synchronized.class_summary(PriorityClass.PERIODIC).maximum + 1e-9

    def test_random_scenario_is_reproducible(self):
        network = single_switch_star(4)
        first = EthernetNetworkSimulator(network, star_messages(),
                                         scenario="random", seed=9).run(
            duration=units.ms(100))
        second = EthernetNetworkSimulator(network, star_messages(),
                                          scenario="random", seed=9).run(
            duration=units.ms(100))
        assert first.flow_latencies["nav"].samples == \
            second.flow_latencies["nav"].samples

    def test_unknown_policy_rejected(self):
        network = single_switch_star(4)
        with pytest.raises(ConfigurationError):
            EthernetNetworkSimulator(network, star_messages(),
                                     policy="round-robin")

    def test_unknown_scenario_rejected(self):
        network = single_switch_star(4)
        with pytest.raises(ConfigurationError):
            EthernetNetworkSimulator(network, star_messages(),
                                     scenario="bursty")

    def test_empty_flow_list_rejected(self):
        network = single_switch_star(4)
        with pytest.raises(ConfigurationError):
            EthernetNetworkSimulator(network, [])

    def test_invalid_duration_rejected(self):
        network = single_switch_star(4)
        simulator = EthernetNetworkSimulator(network, star_messages())
        with pytest.raises(ConfigurationError):
            simulator.run(duration=0.0)


class TestMultiSwitch:
    def test_cross_switch_traffic_is_delivered(self):
        network = dual_switch_topology(stations_per_switch=2)
        messages = [
            Message.periodic("cross", period=units.ms(20),
                             size=units.words1553(16),
                             source="station-00", destination="station-03"),
            Message.periodic("local", period=units.ms(20),
                             size=units.words1553(16),
                             source="station-02", destination="station-03"),
        ]
        simulator = EthernetNetworkSimulator(network, messages,
                                             policy="strict-priority")
        results = simulator.run(duration=units.ms(100))
        assert results.instances_delivered == results.instances_sent
        assert results.link_utilization["switch-0->switch-1"] > 0

    def test_tiny_queues_cause_drops_when_shaping_disabled(self):
        network = single_switch_star(4)
        messages = [
            Message.sporadic(f"burst-{index}", min_interarrival=units.ms(20),
                             size=units.bytes_(1500),
                             source=f"station-{index:02d}",
                             destination="station-00")
            for index in range(1, 4)
        ]
        simulator = EthernetNetworkSimulator(
            network, messages, policy="fcfs", shaping_enabled=False,
            queue_capacity=units.bytes_(2000))
        results = simulator.run(duration=units.ms(100))
        assert results.frames_dropped > 0
        assert results.instances_delivered < results.instances_sent


class TestTraceToggleAfterConstruction:
    def test_enabling_the_shared_trace_after_build_records_events(
            self, small_case):
        # TraceRecorder.enabled is a public mutable attribute: flipping it
        # on after the network is built must still produce a frame-level
        # trace (the hot-path guards read it live, not a snapshot).
        from repro.analysis.validation import star_for_message_set
        from repro.ethernet.network_sim import EthernetNetworkSimulator
        from repro import units

        network = star_for_message_set(small_case)
        simulator = EthernetNetworkSimulator(
            network, small_case.messages, policy="fcfs",
            scenario="synchronized", seed=1)
        simulator.trace.enabled = True
        simulator.run(duration=units.ms(40))
        assert len(simulator.trace) > 0
        categories = {entry.category for entry in simulator.trace}
        assert "frame.tx_start" in categories
        assert "instance.delivered" in categories
