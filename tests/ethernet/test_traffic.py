"""Traffic sources."""

import numpy as np
import pytest

from repro import Flow, Message, units
from repro.errors import ConfigurationError
from repro.ethernet.link import LinkTransmitter
from repro.ethernet.station import EndStation
from repro.ethernet.traffic import PeriodicSource, SporadicSource
from repro.shaping import FifoQueue
from repro.simulation import Simulator


def make_station(simulator):
    station = EndStation(simulator, "tx")
    sink = EndStation(simulator, "rx")
    uplink = LinkTransmitter(simulator=simulator, name="tx->rx",
                             capacity=units.mbps(100), propagation_delay=0.0,
                             queue=FifoQueue(), deliver=sink.receive)
    station.attach_uplink(uplink)
    return station


def periodic_message(period_ms=20):
    return Message.periodic("nav", period=units.ms(period_ms),
                            size=units.words1553(8), source="tx",
                            destination="rx")


def sporadic_message(interarrival_ms=20):
    return Message.sporadic("alarm", min_interarrival=units.ms(interarrival_ms),
                            size=units.words1553(2), source="tx",
                            destination="rx", deadline=units.ms(3))


class TestPeriodicSource:
    def test_release_count_matches_duration_over_period(self):
        sim = Simulator()
        station = make_station(sim)
        message = periodic_message(period_ms=20)
        station.register_flow(Flow(message))
        source = PeriodicSource(sim, station, message)
        source.start(until=units.ms(100))
        sim.run()
        assert source.instances_released == 5  # 0, 20, 40, 60, 80 ms

    def test_offset_shifts_the_first_release(self):
        sim = Simulator()
        station = make_station(sim)
        message = periodic_message(period_ms=20)
        station.register_flow(Flow(message))
        source = PeriodicSource(sim, station, message, offset=units.ms(15))
        source.start(until=units.ms(60))
        sim.run()
        assert source.instances_released == 3  # 15, 35, 55 ms

    def test_offset_beyond_duration_releases_nothing(self):
        sim = Simulator()
        station = make_station(sim)
        message = periodic_message()
        station.register_flow(Flow(message))
        source = PeriodicSource(sim, station, message, offset=units.ms(200))
        source.start(until=units.ms(100))
        sim.run()
        assert source.instances_released == 0

    def test_jitter_requires_a_generator(self):
        sim = Simulator()
        station = make_station(sim)
        message = periodic_message()
        with pytest.raises(ConfigurationError):
            PeriodicSource(sim, station, message, jitter=units.ms(1))

    def test_jittered_releases_never_reorder(self):
        sim = Simulator()
        station = make_station(sim)
        message = periodic_message()
        station.register_flow(Flow(message))
        release_times = []
        original_submit = station.submit
        station.submit = lambda instance: (release_times.append(sim.now),
                                           original_submit(instance))
        source = PeriodicSource(sim, station, message, jitter=units.ms(5),
                                rng=np.random.default_rng(1))
        source.start(until=units.ms(200))
        sim.run()
        assert release_times == sorted(release_times)

    def test_sporadic_message_rejected(self):
        sim = Simulator()
        station = make_station(sim)
        with pytest.raises(ConfigurationError):
            PeriodicSource(sim, station, sporadic_message())

    def test_wrong_station_rejected(self):
        sim = Simulator()
        station = make_station(sim)
        foreign = Message.periodic("x", period=units.ms(20), size=32,
                                   source="other", destination="rx")
        with pytest.raises(ConfigurationError):
            PeriodicSource(sim, station, foreign)


class TestSporadicSource:
    def test_greedy_releases_at_the_minimal_interarrival(self):
        sim = Simulator()
        station = make_station(sim)
        message = sporadic_message(interarrival_ms=20)
        station.register_flow(Flow(message))
        source = SporadicSource(sim, station, message, greedy=True)
        source.start(until=units.ms(100))
        sim.run()
        assert source.instances_released == 5

    def test_non_greedy_spacing_is_at_least_the_interarrival(self):
        sim = Simulator()
        station = make_station(sim)
        message = sporadic_message(interarrival_ms=20)
        station.register_flow(Flow(message))
        release_times = []
        original_submit = station.submit
        station.submit = lambda instance: (release_times.append(sim.now),
                                           original_submit(instance))
        source = SporadicSource(sim, station, message, greedy=False,
                                mean_slack=units.ms(10),
                                rng=np.random.default_rng(5))
        source.start(until=units.ms(400))
        sim.run()
        spacings = np.diff(release_times)
        assert (spacings >= units.ms(20) - 1e-9).all()

    def test_non_greedy_without_rng_rejected(self):
        sim = Simulator()
        station = make_station(sim)
        with pytest.raises(ConfigurationError):
            SporadicSource(sim, station, sporadic_message(), greedy=False,
                           mean_slack=units.ms(10))

    def test_periodic_message_rejected(self):
        sim = Simulator()
        station = make_station(sim)
        with pytest.raises(ConfigurationError):
            SporadicSource(sim, station, periodic_message())

    def test_invalid_until_rejected(self):
        sim = Simulator()
        station = make_station(sim)
        message = sporadic_message()
        station.register_flow(Flow(message))
        source = SporadicSource(sim, station, message)
        with pytest.raises(ConfigurationError):
            source.start(until=0.0)
