"""End stations: shaping, multiplexing, reception."""

import pytest

from repro import Flow, Message, units
from repro.errors import ConfigurationError
from repro.ethernet.frame import MessageInstance, wire_burst
from repro.ethernet.link import LinkTransmitter
from repro.ethernet.station import EndStation
from repro.shaping import FifoQueue
from repro.simulation import Simulator


def make_message(name="nav", period_ms=20, size_words=16, source="tx",
                 destination="rx"):
    return Message.periodic(name, period=units.ms(period_ms),
                            size=units.words1553(size_words),
                            source=source, destination=destination)


def wire_stations(simulator, shaping_enabled=True):
    """A transmitting station connected straight to a receiving station."""
    sender = EndStation(simulator, "tx", shaping_enabled=shaping_enabled)
    receiver = EndStation(simulator, "rx")
    uplink = LinkTransmitter(simulator=simulator, name="tx->rx",
                             capacity=units.mbps(10), propagation_delay=0.0,
                             queue=FifoQueue(), deliver=receiver.receive)
    sender.attach_uplink(uplink)
    return sender, receiver


class TestFlowRegistration:
    def test_register_and_lookup(self):
        sim = Simulator()
        sender, __ = wire_stations(sim)
        flow = Flow(make_message())
        sender.register_flow(flow)
        assert sender.flows == [flow]
        assert sender.shaper("nav").bucket.bucket_size == pytest.approx(
            wire_burst(flow.message))

    def test_register_foreign_flow_rejected(self):
        sim = Simulator()
        sender, __ = wire_stations(sim)
        foreign = Flow(make_message(source="other"))
        with pytest.raises(ConfigurationError):
            sender.register_flow(foreign)

    def test_duplicate_registration_rejected(self):
        sim = Simulator()
        sender, __ = wire_stations(sim)
        sender.register_flow(Flow(make_message()))
        with pytest.raises(ConfigurationError):
            sender.register_flow(Flow(make_message()))

    def test_shaper_rate_matches_wire_burst_over_period(self):
        sim = Simulator()
        sender, __ = wire_stations(sim)
        message = make_message()
        sender.register_flow(Flow(message))
        bucket = sender.shaper("nav").bucket
        assert bucket.token_rate == pytest.approx(
            wire_burst(message) / message.period)


class TestEmissionAndReception:
    def test_instance_is_delivered_and_latency_recorded(self):
        sim = Simulator()
        sender, receiver = wire_stations(sim)
        message = make_message()
        sender.register_flow(Flow(message))
        deliveries = []
        receiver.add_delivery_listener(
            lambda instance, latency: deliveries.append((instance, latency)))
        sender.submit(MessageInstance(message=message, sequence=0,
                                      release_time=0.0))
        sim.run()
        assert len(deliveries) == 1
        instance, latency = deliveries[0]
        assert instance.message.name == "nav"
        assert latency == pytest.approx(wire_burst(message) / units.mbps(10))
        assert sender.instances_sent.value == 1
        assert receiver.instances_received.value == 1

    def test_submitting_unregistered_flow_rejected(self):
        sim = Simulator()
        sender, __ = wire_stations(sim)
        with pytest.raises(ConfigurationError):
            sender.submit(MessageInstance(message=make_message(),
                                          sequence=0, release_time=0.0))

    def test_submit_without_uplink_rejected(self):
        sim = Simulator()
        station = EndStation(sim, "tx")
        message = make_message()
        station.register_flow(Flow(message))
        with pytest.raises(ConfigurationError):
            station.submit(MessageInstance(message=message, sequence=0,
                                           release_time=0.0))

    def test_receiving_foreign_frame_rejected(self):
        sim = Simulator()
        sender, receiver = wire_stations(sim)
        message = make_message(destination="someone-else")
        from repro.ethernet.frame import frames_for_instance
        from repro.flows.priorities import PriorityClass
        frame = frames_for_instance(
            MessageInstance(message=message, sequence=0, release_time=0.0),
            PriorityClass.PERIODIC)[0]
        with pytest.raises(ConfigurationError):
            receiver.receive(frame)

    def test_shaper_spaces_back_to_back_instances(self):
        """Two instances submitted together leave at least b/r apart."""
        sim = Simulator()
        sender, receiver = wire_stations(sim)
        message = make_message(period_ms=20)
        sender.register_flow(Flow(message))
        deliveries = []
        receiver.add_delivery_listener(
            lambda instance, latency: deliveries.append(sim.now))
        sender.submit(MessageInstance(message=message, sequence=0,
                                      release_time=0.0))
        sender.submit(MessageInstance(message=message, sequence=1,
                                      release_time=0.0))
        sim.run()
        assert len(deliveries) == 2
        # The second instance must wait for the bucket to refill: the gap is
        # at least one period minus the transmission time.
        spacing = deliveries[1] - deliveries[0]
        assert spacing >= message.period - 1e-9

    def test_shaping_disabled_sends_back_to_back(self):
        sim = Simulator()
        sender, receiver = wire_stations(sim, shaping_enabled=False)
        message = make_message(period_ms=20)
        sender.register_flow(Flow(message))
        deliveries = []
        receiver.add_delivery_listener(
            lambda instance, latency: deliveries.append(sim.now))
        sender.submit(MessageInstance(message=message, sequence=0,
                                      release_time=0.0))
        sender.submit(MessageInstance(message=message, sequence=1,
                                      release_time=0.0))
        sim.run()
        spacing = deliveries[1] - deliveries[0]
        assert spacing == pytest.approx(wire_burst(message) / units.mbps(10))

    def test_fragmented_instance_counted_once(self):
        sim = Simulator()
        sender, receiver = wire_stations(sim)
        big = Message.periodic("bulk", period=units.ms(160),
                               size=units.bytes_(4000), source="tx",
                               destination="rx")
        sender.register_flow(Flow(big))
        deliveries = []
        receiver.add_delivery_listener(
            lambda instance, latency: deliveries.append(instance))
        sender.submit(MessageInstance(message=big, sequence=0,
                                      release_time=0.0))
        sim.run()
        assert len(deliveries) == 1
        assert receiver.frames_received.value == 3  # 4000 B -> 3 frames
