"""Link transmitters (one direction of a full-duplex link)."""

import pytest

from repro import Message, PriorityClass, units
from repro.ethernet.frame import MessageInstance, frames_for_instance
from repro.ethernet.link import LinkTransmitter
from repro.shaping import FifoQueue, StrictPriorityQueues
from repro.simulation import Simulator


def make_frame(size_words=16, priority=PriorityClass.PERIODIC, name="m"):
    message = Message.periodic(name, period=units.ms(20),
                               size=units.words1553(size_words),
                               source="a", destination="b")
    instance = MessageInstance(message=message, sequence=0, release_time=0.0)
    return frames_for_instance(instance, priority)[0]


def make_transmitter(simulator, delivered, queue=None, capacity=units.mbps(10),
                     propagation=0.0):
    if queue is None:
        queue = FifoQueue()
    return LinkTransmitter(simulator=simulator, name="a->b",
                           capacity=capacity, propagation_delay=propagation,
                           queue=queue, deliver=delivered.append)


class TestTransmission:
    def test_single_frame_delivered_after_transmission_time(self):
        sim = Simulator()
        delivered = []
        transmitter = make_transmitter(sim, delivered)
        frame = make_frame()
        transmitter.enqueue(frame)
        sim.run()
        assert delivered == [frame]
        assert sim.now == pytest.approx(frame.size / units.mbps(10))

    def test_propagation_delay_added(self):
        sim = Simulator()
        delivered = []
        transmitter = make_transmitter(sim, delivered, propagation=1e-5)
        frame = make_frame()
        transmitter.enqueue(frame)
        sim.run()
        assert sim.now == pytest.approx(frame.size / units.mbps(10) + 1e-5)

    def test_frames_serialised_back_to_back(self):
        sim = Simulator()
        delivered = []
        transmitter = make_transmitter(sim, delivered)
        first, second = make_frame(name="m1"), make_frame(name="m2")
        transmitter.enqueue(first)
        transmitter.enqueue(second)
        sim.run()
        assert delivered == [first, second]
        assert sim.now == pytest.approx((first.size + second.size) / 1e7)

    def test_statistics(self):
        sim = Simulator()
        delivered = []
        transmitter = make_transmitter(sim, delivered)
        frame = make_frame()
        transmitter.enqueue(frame)
        sim.run()
        assert transmitter.frames_sent.value == 1
        assert transmitter.bits_sent == frame.size
        assert transmitter.busy_time == pytest.approx(frame.size / 1e7)
        assert transmitter.utilization(1.0) == pytest.approx(frame.size / 1e7)

    def test_priority_queue_reorders_waiting_frames(self):
        sim = Simulator()
        delivered = []
        transmitter = make_transmitter(sim, delivered,
                                       queue=StrictPriorityQueues())
        background = make_frame(priority=PriorityClass.BACKGROUND, name="bg1")
        blocking = make_frame(priority=PriorityClass.BACKGROUND, name="bg2")
        urgent = make_frame(priority=PriorityClass.URGENT, name="urg")
        # The first background frame starts transmitting (non-preemption);
        # the urgent frame then overtakes the second background frame.
        transmitter.enqueue(background)
        transmitter.enqueue(blocking)
        transmitter.enqueue(urgent)
        sim.run()
        assert [frame.flow_name for frame in delivered] == [
            "bg1", "urg", "bg2"]

    def test_non_preemption(self):
        """A frame already in transmission is never interrupted."""
        sim = Simulator()
        delivered = []
        transmitter = make_transmitter(sim, delivered,
                                       queue=StrictPriorityQueues())
        background = make_frame(priority=PriorityClass.BACKGROUND, name="bg")
        urgent = make_frame(priority=PriorityClass.URGENT, name="urg")
        transmitter.enqueue(background)
        # Enqueue the urgent frame while the background one is on the wire.
        sim.schedule(background.size / units.mbps(10) / 2,
                     transmitter.enqueue, urgent)
        sim.run()
        assert [frame.flow_name for frame in delivered] == ["bg", "urg"]
        # The urgent frame completes only after the background one finishes
        # plus its own transmission time.
        assert sim.now == pytest.approx(
            (background.size + urgent.size) / units.mbps(10))


class TestDrops:
    def test_queue_overflow_counts_drops(self):
        sim = Simulator()
        delivered = []
        frame = make_frame()
        queue = FifoQueue(capacity=frame.size * 1.5)
        transmitter = make_transmitter(sim, delivered, queue=queue)
        # The first frame goes straight to the server (leaves the queue), the
        # second occupies the queue and the third overflows it.
        transmitter.enqueue(make_frame(name="m1"))
        transmitter.enqueue(make_frame(name="m2"))
        accepted = transmitter.enqueue(make_frame(name="m3"))
        assert not accepted
        assert transmitter.drops == 1
        sim.run()
        assert len(delivered) == 2


class TestValidation:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(Exception):
            LinkTransmitter(Simulator(), "x", capacity=0,
                            propagation_delay=0.0, queue=FifoQueue(),
                            deliver=lambda frame: None)

    def test_negative_propagation_rejected(self):
        with pytest.raises(Exception):
            LinkTransmitter(Simulator(), "x", capacity=1e6,
                            propagation_delay=-1.0, queue=FifoQueue(),
                            deliver=lambda frame: None)

    def test_utilization_requires_positive_duration(self):
        sim = Simulator()
        transmitter = make_transmitter(sim, [])
        with pytest.raises(Exception):
            transmitter.utilization(0.0)
