"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running the tests from a source checkout even when the package has
# not been pip-installed (the offline environment lacks the ``wheel`` package
# needed by PEP 517 editable installs).
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import os

import pytest

from repro import Message, MessageSet, units
from repro.store import STORE_DIR_ENV
from repro.workloads.realcase import RealCaseParameters, generate_real_case


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_store(tmp_path_factory) -> None:
    """Point the result store at a session-private directory.

    The CLI's heavy subcommands persist results under ``$REPRO_STORE_DIR``
    (default ``.repro-store/`` in the working directory); the test suite
    must never write into the checkout — nor reuse a developer's store.
    """
    os.environ[STORE_DIR_ENV] = str(tmp_path_factory.mktemp("repro-store"))


@pytest.fixture(scope="session")
def real_case() -> MessageSet:
    """The default seeded case-study message set (shared, read-only)."""
    return generate_real_case()


@pytest.fixture(scope="session")
def small_case() -> MessageSet:
    """A reduced case study (8 stations) for the slower simulation tests."""
    return generate_real_case(
        RealCaseParameters(station_count=8), seed=3, name="small-case")


@pytest.fixture()
def tiny_message_set() -> MessageSet:
    """A deterministic five-message set used by many unit tests."""
    return MessageSet([
        Message.periodic("nav", period=units.ms(20),
                         size=units.words1553(8),
                         source="station-00", destination="station-01"),
        Message.periodic("air", period=units.ms(80),
                         size=units.words1553(16),
                         source="station-02", destination="station-01"),
        Message.sporadic("alarm", min_interarrival=units.ms(20),
                         size=units.words1553(2),
                         source="station-03", destination="station-01",
                         deadline=units.ms(3)),
        Message.sporadic("status", min_interarrival=units.ms(40),
                         size=units.words1553(24),
                         source="station-02", destination="station-00",
                         deadline=units.ms(40)),
        Message.sporadic("maintenance", min_interarrival=units.ms(160),
                         size=units.words1553(64),
                         source="station-01", destination="station-03",
                         deadline=None),
    ], name="tiny")
