"""The HTTP admission-control server: routing, watchdogs, shedding,
fault injection, journal durability and crash recovery."""

import contextlib
import time

import pytest

from repro import units
from repro.campaigns.scenario import Scenario, TopologySpec, WorkloadSpec
from repro.exec.faults import FaultPlan
from repro.serve import (
    AdmissionEngine,
    AdmissionJournal,
    AdmissionServer,
    ServeClient,
    ServeConfig,
)
from repro.store import ResultStore


def scenario():
    return Scenario(name="serve-http", description="server test scenario",
                    workload=WorkloadSpec(station_count=6, seed=3),
                    topology=TopologySpec("single-switch-star"),
                    capacity=units.mbps(10.0),
                    technology_delay=units.us(16.0),
                    policies=("strict-priority", "fcfs"))


def probe(name="probe-1", **overrides):
    payload = {"name": name, "kind": "sporadic", "period": 1.0,
               "size": 100.0, "source": "station-00",
               "destination": "station-01", "deadline": None}
    payload.update(overrides)
    return payload


@contextlib.contextmanager
def serving(engine=None, config=None, journal=None, faults=None):
    engine = engine or AdmissionEngine(scenario(), "strict-priority")
    server = AdmissionServer(engine,
                             config or ServeConfig(port=0, deadline=2.0),
                             journal=journal, faults=faults)
    server.start()
    client = ServeClient(f"http://127.0.0.1:{server.port}")
    client.wait_ready()
    try:
        yield server, client
    finally:
        server.drain(timeout=10.0)


class TestRoutes:
    def test_health_reports_the_committed_state(self):
        with serving() as (server, client):
            status, body, _ = client.health()
            assert status == 200
            assert body["status"] == "ok"
            assert body["ready"] is True
            assert body["policy"] == "strict-priority"
            assert body["flow_count"] == \
                server.engine.snapshot().flow_count
            assert body["state_fingerprint"] == \
                server.engine.state_fingerprint()
            assert body["bounds_fingerprint"] == \
                server.engine.snapshot().bounds_fingerprint()

    def test_admit_remove_round_trip(self):
        with serving() as (server, client):
            status, body, _ = client.admit(probe())
            assert status == 200
            assert body["applied"] is True
            assert body["degraded"] is False
            status, body, _ = client.admit(probe())
            assert status == 409  # duplicate name
            status, body, _ = client.remove("probe-1")
            assert status == 200
            assert body["applied"] is True
            status, body, _ = client.remove("probe-1")
            assert status == 404
            assert "not admitted" in body["reasons"][0]

    def test_check_is_a_pure_what_if(self):
        with serving() as (server, client):
            before = server.engine.state_fingerprint()
            status, body, _ = client.check(probe())
            assert status == 200
            assert body["snapshot"]["flow_count"] == \
                server.engine.snapshot().flow_count + 1
            assert server.engine.state_fingerprint() == before

    def test_bad_flow_payload_is_a_400(self):
        with serving() as (_, client):
            status, body, _ = client.admit(probe(bogus_field=1))
            assert status == 400
            assert "unknown flow field" in body["error"]

    def test_malformed_json_body_is_a_400(self):
        with serving() as (_, client):
            import urllib.request
            request = urllib.request.Request(
                client.base_url + "/admit", data=b"{torn", method="POST")
            import urllib.error
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5)
            assert excinfo.value.code == 400

    def test_remove_requires_a_name(self):
        with serving() as (_, client):
            status, body, _ = client.request("POST", "/remove", {})
            assert status == 400
            assert "name" in body["error"]

    def test_unknown_paths_are_404(self):
        with serving() as (_, client):
            assert client.request("GET", "/nope")[0] == 404
            assert client.request("POST", "/nope", {})[0] == 404

    def test_stats_counts_served_requests(self):
        with serving() as (_, client):
            client.admit(probe())
            client.remove("probe-1")
            status, body, _ = client.stats()
            assert status == 200
            assert body["served"] >= 2
            assert body["shed"] == 0
            assert body["incremental_hits"] >= 2
            assert body["p99_latency"] >= 0.0


class TestWatchdogAndShedding:
    def test_slow_request_degrades_to_the_committed_snapshot(self):
        # shed_p99 far above the injected latency so this test sees the
        # watchdog, not the shedder (that one has its own test below).
        config = ServeConfig(port=0, deadline=0.15, shed_p99=10.0)
        faults = FaultPlan.parse("req-slow@1:1.0")
        with serving(config=config, faults=faults) as (server, client):
            committed = server.engine.snapshot()
            status, body, _ = client.admit(probe())
            assert status == 200
            assert body["degraded"] is True
            assert body["applied"] is False
            assert "deadline budget" in body["reasons"][0]
            assert body["snapshot"]["state_fingerprint"] == \
                committed.state_fingerprint
            # Wait the injected sleep out, then the worker serves again.
            deadline = time.monotonic() + 5.0
            while not server._latencies and time.monotonic() < deadline:
                time.sleep(0.02)
            status, body, _ = client.admit(probe("probe-2"))
            assert status == 200
            assert body["degraded"] is False
            assert body["applied"] is True
            assert server._counters["degraded"] == 1

    def test_draining_server_sheds_with_retry_after(self):
        with serving() as (server, client):
            server.draining = True
            status, body, headers = client.admit(probe())
            assert status == 503
            assert body["shed"] is True
            assert headers.get("Retry-After") == "1"
            server.draining = False  # let the fixture drain cleanly

    def test_p99_over_threshold_sheds(self):
        with serving(config=ServeConfig(port=0, deadline=0.2)) \
                as (server, client):
            server._latencies.extend([1.0] * 100)
            assert server.should_shed() == \
                "rolling p99 latency over threshold"
            status, body, _ = client.admit(probe())
            assert status == 503
            server._latencies.clear()

    def test_full_queue_sheds(self):
        config = ServeConfig(port=0, deadline=0.1, queue_depth=1)
        faults = FaultPlan.parse("req-slow@1:1.0")
        with serving(config=config, faults=faults) as (server, client):
            # Request 1 blocks the worker; its watchdog degrades it.
            status, body, _ = client.check()
            assert body["degraded"] is True
            # The queue (depth 1) still holds nothing, but a second
            # blocked worker cycle fills it deterministically:
            server._queue.put(object())
            status, body, headers = client.check()
            assert status == 503
            assert "Retry-After" in headers
            server._queue.get()  # unblock the drain

    def test_p99_latency_of_an_empty_sample_is_zero(self):
        engine = AdmissionEngine(scenario(), "strict-priority")
        server = AdmissionServer(engine, ServeConfig(port=0))
        assert server.p99_latency() == 0.0


class TestRequestFaults:
    def test_req_exc_is_a_deterministic_500(self):
        faults = FaultPlan.parse("req-exc@1")
        with serving(faults=faults) as (server, client):
            status, body, _ = client.admit(probe())
            assert status == 500
            assert body["injected"] is True
            # The engine never saw the mutation.
            assert "probe-1" not in server.engine.flow_names()
            status, body, _ = client.admit(probe())
            assert status == 200 and body["applied"] is True
            assert server._counters["errors"] == 1


class TestJournalDurability:
    def test_committed_mutations_are_journaled(self, tmp_path):
        journal = AdmissionJournal(tmp_path / "j")
        with serving(journal=journal) as (_, client):
            client.admit(probe())
            client.remove("probe-1")
        state = AdmissionJournal(tmp_path / "j").recover()
        # drain() folded the final checkpoint; the table is the preload.
        assert state.checkpoint_seq == 2
        assert state.operations == ()
        assert len(state.flows) > 0

    def test_rejected_admits_are_not_journaled(self, tmp_path):
        journal = AdmissionJournal(tmp_path / "j")
        with serving(journal=journal) as (server, client):
            status, _, _ = client.admit(probe(bogus=1))
            assert status == 400
            status, _, _ = client.admit(probe("probe-1", period=0.001,
                                              size=64000.0,
                                              deadline=0.001))
            assert status == 409
            assert journal._seq == 0

    def test_journal_eio_rolls_the_admit_back(self, tmp_path):
        journal = AdmissionJournal(tmp_path / "j")
        faults = FaultPlan.parse("journal-eio@1")
        with serving(journal=journal, faults=faults) as (server, client):
            before_state = server.engine.state_fingerprint()
            before_bounds = server.engine.snapshot().bounds_fingerprint()
            status, body, _ = client.admit(probe())
            assert status == 500
            assert "journal append failed" in body["error"]
            # Acknowledged state == journaled state: the mutation was
            # rolled back bit-identically.
            assert server.engine.state_fingerprint() == before_state
            assert server.engine.snapshot().bounds_fingerprint() == \
                before_bounds
            assert "probe-1" not in server.engine.flow_names()
            # The very next request works and journals normally.
            status, body, _ = client.admit(probe())
            assert status == 200 and body["applied"] is True

    def test_journal_eio_rolls_the_remove_back(self, tmp_path):
        journal = AdmissionJournal(tmp_path / "j")
        faults = FaultPlan.parse("journal-eio@2")
        with serving(journal=journal, faults=faults) as (server, client):
            client.admit(probe())
            state = server.engine.state_fingerprint()
            status, body, _ = client.remove("probe-1")
            assert status == 500
            assert "probe-1" in server.engine.flow_names()
            assert server.engine.state_fingerprint() == state

    def test_journal_torn_write_is_skipped_on_recovery(self, tmp_path):
        journal = AdmissionJournal(tmp_path / "j")
        faults = FaultPlan.parse("journal-torn@1")
        engine = AdmissionEngine(scenario(), "strict-priority")
        server = AdmissionServer(engine, ServeConfig(port=0, deadline=2.0),
                                 journal=journal, faults=faults)
        server.start()
        client = ServeClient(f"http://127.0.0.1:{server.port}")
        client.wait_ready()
        status, body, _ = client.admit(probe())
        assert status == 200 and body["applied"] is True
        client.admit(probe("probe-2"))
        # SIGKILL-equivalent: stop without draining (no final checkpoint).
        server._httpd.shutdown()
        server._httpd.server_close()
        journal.close()
        state = AdmissionJournal(tmp_path / "j").recover()
        assert state.corrupt_lines == 1  # the torn probe-1 append
        assert [op["flow"]["name"] for op in state.operations] == \
            ["probe-2"]


class TestCrashRecovery:
    def test_recovery_is_byte_identical_after_an_unclean_stop(self,
                                                              tmp_path):
        journal = AdmissionJournal(tmp_path / "j")
        engine = AdmissionEngine(scenario(), "strict-priority")
        # The CLI seeds a checkpoint of the preloaded table on fresh
        # start; mirror that so recovery has the base state.
        journal.checkpoint(engine.flow_payloads())
        server = AdmissionServer(engine, ServeConfig(port=0, deadline=2.0),
                                 journal=journal)
        server.start()
        client = ServeClient(f"http://127.0.0.1:{server.port}")
        client.wait_ready()
        client.admit(probe("crash-1"))
        client.admit(probe("crash-2", size=200.0))
        client.remove("crash-1")
        expected_state = engine.state_fingerprint()
        expected_bounds = engine.snapshot().bounds_fingerprint()
        # SIGKILL-equivalent: no drain, no final checkpoint.
        server._httpd.shutdown()
        server._httpd.server_close()
        journal.close()

        recovered_journal = AdmissionJournal(tmp_path / "j")
        state = recovered_journal.recover()
        assert not state.empty
        recovered = AdmissionEngine(scenario(), "strict-priority",
                                    preload=False)
        recovered.replay(
            [{"op": "admit", "flow": flow} for flow in state.flows]
            + list(state.operations))
        assert recovered.state_fingerprint() == expected_state
        assert recovered.snapshot().bounds_fingerprint() == expected_bounds
        assert recovered.verify()


class TestStoreDegradationMidServe:
    """Regression: a store degrading under a live server must surface in
    /health with the same counter shape ``ResultStore.health()`` (and
    therefore ``repro store stats``) reports."""

    def test_store_eio_mid_serve_degrades_health(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        engine = AdmissionEngine(scenario(), "strict-priority", store)
        # Request 1's snapshot write fails with an injected EIO; the
        # hardened store degrades it to an unpersisted write.
        faults = FaultPlan.parse("store-eio@1")
        with serving(engine=engine, faults=faults) as (server, client):
            status, body, _ = client.health()
            assert body["status"] == "ok"
            assert body["store"]["degraded"] is False
            status, body, _ = client.admit(probe())
            assert status == 200 and body["applied"] is True
            status, body, _ = client.health()
            assert body["status"] == "degraded"
            assert body["store"]["write_errors"] >= 1
            assert body["store"]["degraded"] is True
            # One counter shape across every surface (the CLI `store
            # stats` integrity line prints the same dict).
            assert set(body["store"]) == set(store.health())

    def test_health_without_a_store_has_no_store_section(self):
        with serving() as (_, client):
            _, body, _ = client.health()
            assert "store" not in body


class TestDrain:
    def test_drain_is_clean_and_checkpoints(self, tmp_path):
        journal = AdmissionJournal(tmp_path / "j")
        engine = AdmissionEngine(scenario(), "strict-priority")
        server = AdmissionServer(engine, ServeConfig(port=0, deadline=2.0),
                                 journal=journal)
        server.start()
        client = ServeClient(f"http://127.0.0.1:{server.port}")
        client.wait_ready()
        client.admit(probe())
        assert server.drain(timeout=10.0) is True
        state = AdmissionJournal(tmp_path / "j").recover()
        assert state.operations == ()
        names = [flow["name"] for flow in state.flows]
        assert "probe-1" in names

    def test_drained_server_reports_not_ready(self):
        engine = AdmissionEngine(scenario(), "strict-priority")
        server = AdmissionServer(engine, ServeConfig(port=0, deadline=2.0))
        server.start()
        client = ServeClient(f"http://127.0.0.1:{server.port}")
        client.wait_ready()
        server.draining = True
        _, body, _ = client.health()
        assert body["status"] == "draining"
        assert body["ready"] is False
        assert server.drain(timeout=10.0) is True
