"""The admission journal: write-ahead appends, atomic checkpoints,
torn-tail recovery."""

import json

import pytest

from repro.exec.faults import FaultPlan, request_context
from repro.serve import AdmissionJournal


def flow(name, size=100.0):
    return {"name": name, "kind": "sporadic", "period": 1.0, "size": size,
            "source": "station-00", "destination": "station-01",
            "deadline": None}


def admit(name):
    return {"op": "admit", "flow": flow(name)}


class TestAppendAndRecover:
    def test_appends_carry_increasing_seq(self, tmp_path):
        journal = AdmissionJournal(tmp_path)
        assert journal.append(admit("a")) == 1
        assert journal.append(admit("b")) == 2
        assert journal.append({"op": "remove", "name": "a"}) == 3

    def test_recover_replays_the_tail_in_order(self, tmp_path):
        journal = AdmissionJournal(tmp_path)
        journal.append(admit("a"))
        journal.append({"op": "remove", "name": "a"})
        journal.close()
        state = AdmissionJournal(tmp_path).recover()
        assert [op["op"] for op in state.operations] == ["admit", "remove"]
        assert state.flows == ()
        assert state.checkpoint_seq == 0
        assert state.last_seq == 2
        assert not state.empty

    def test_fresh_directory_recovers_empty(self, tmp_path):
        state = AdmissionJournal(tmp_path / "nowhere").recover()
        assert state.empty
        assert state.corrupt_lines == 0
        assert not state.corrupt_checkpoint

    def test_seq_resumes_after_recovery(self, tmp_path):
        journal = AdmissionJournal(tmp_path)
        journal.append(admit("a"))
        journal.close()
        reopened = AdmissionJournal(tmp_path)
        reopened.recover()
        assert reopened.append(admit("b")) == 2


class TestCheckpoints:
    def test_checkpoint_compacts_the_journal(self, tmp_path):
        journal = AdmissionJournal(tmp_path)
        journal.append(admit("a"))
        journal.append(admit("b"))
        journal.checkpoint([flow("a"), flow("b")])
        assert journal.journal_path.read_text() == ""
        state = AdmissionJournal(tmp_path).recover()
        assert [entry["name"] for entry in state.flows] == ["a", "b"]
        assert state.operations == ()
        assert state.checkpoint_seq == 2

    def test_tail_after_checkpoint_is_replayed_on_top(self, tmp_path):
        journal = AdmissionJournal(tmp_path)
        journal.append(admit("a"))
        journal.checkpoint([flow("a")])
        journal.append(admit("b"))
        journal.close()
        state = AdmissionJournal(tmp_path).recover()
        assert [entry["name"] for entry in state.flows] == ["a"]
        assert [op["flow"]["name"] for op in state.operations] == ["b"]

    def test_maybe_checkpoint_honours_the_interval(self, tmp_path):
        journal = AdmissionJournal(tmp_path, checkpoint_every=3)
        for name in ("a", "b"):
            journal.append(admit(name))
            assert not journal.maybe_checkpoint([])
        journal.append(admit("c"))
        assert journal.maybe_checkpoint([flow("a")])
        assert journal.journal_path.read_text() == ""

    def test_zero_interval_disables_automatic_checkpoints(self, tmp_path):
        journal = AdmissionJournal(tmp_path, checkpoint_every=0)
        for index in range(10):
            journal.append(admit(f"f{index}"))
        assert not journal.maybe_checkpoint([])

    def test_crash_between_checkpoint_and_compaction_is_safe(self, tmp_path):
        """Entries at or below the checkpoint seq are filtered out, so a
        crash that published the checkpoint but never truncated the
        journal replays nothing twice."""
        journal = AdmissionJournal(tmp_path)
        journal.append(admit("a"))
        journal.append(admit("b"))
        journal.close()
        preserved = journal.journal_path.read_text()
        journal2 = AdmissionJournal(tmp_path)
        journal2.recover()
        journal2.checkpoint([flow("a"), flow("b")])
        # Simulate the crash window: the pre-checkpoint journal returns.
        journal.journal_path.write_text(preserved)
        state = AdmissionJournal(tmp_path).recover()
        assert [entry["name"] for entry in state.flows] == ["a", "b"]
        assert state.operations == ()


class TestCorruption:
    def test_torn_tail_is_skipped_and_counted(self, tmp_path):
        journal = AdmissionJournal(tmp_path)
        journal.append(admit("a"))
        journal.close()
        with open(journal.journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "op": "adm')  # SIGKILL mid-append
        state = AdmissionJournal(tmp_path).recover()
        assert state.corrupt_lines == 1
        assert [op["flow"]["name"] for op in state.operations] == ["a"]

    def test_injected_torn_append_is_skipped_on_recovery(self, tmp_path):
        journal = AdmissionJournal(tmp_path)
        plan = FaultPlan.parse("journal-torn@2")
        with request_context(plan, 1):
            journal.append(admit("a"))
        with request_context(plan, 2):
            journal.append(admit("b"))  # torn on disk, memory moves on
        with request_context(plan, 3):
            journal.append(admit("c"))
        journal.close()
        state = AdmissionJournal(tmp_path).recover()
        assert state.corrupt_lines == 1
        assert [op["flow"]["name"] for op in state.operations] == ["a", "c"]

    def test_injected_eio_writes_nothing(self, tmp_path):
        journal = AdmissionJournal(tmp_path)
        journal.append(admit("a"))
        with request_context(FaultPlan.parse("journal-eio@2"), 2):
            with pytest.raises(OSError):
                journal.append(admit("b"))
        journal.close()
        state = AdmissionJournal(tmp_path).recover()
        assert state.corrupt_lines == 0
        assert [op["flow"]["name"] for op in state.operations] == ["a"]
        # The failed append consumed no seq: the next one is 2.
        journal2 = AdmissionJournal(tmp_path)
        journal2.recover()
        assert journal2.append(admit("b")) == 2

    def test_corrupt_checkpoint_is_flagged_not_fatal(self, tmp_path):
        journal = AdmissionJournal(tmp_path)
        journal.append(admit("a"))
        journal.checkpoint([flow("a")])
        journal.append(admit("b"))
        journal.close()
        journal.checkpoint_path.write_text("{torn")
        state = AdmissionJournal(tmp_path).recover()
        assert state.corrupt_checkpoint
        assert state.flows == ()
        # The journal tail survives independently of the checkpoint.
        assert [op["flow"]["name"] for op in state.operations] == ["b"]

    def test_journal_lines_are_compact_single_line_json(self, tmp_path):
        journal = AdmissionJournal(tmp_path)
        journal.append(admit("a"))
        journal.close()
        (line,) = journal.journal_path.read_text().splitlines()
        record = json.loads(line)
        assert record["seq"] == 1
        assert record["op"] == "admit"
