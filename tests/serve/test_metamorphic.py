"""Metamorphic property: admit-then-remove is the identity.

For every generated scenario — the PR 6 fuzz stream plus its multi-hop
graph variant — admitting one probe flow and removing it again must
restore the engine's state fingerprint AND the committed bounds
fingerprint **byte-identically**.  This is the invariant the server's
journal-failure rollback rests on (a rolled-back admit must leave no
trace in the aggregates), so it is pinned across the whole generated
scenario space, not just hand-picked cases.
"""

from dataclasses import replace

import pytest

from repro.fuzz.generator import GeneratorConfig, ScenarioGenerator
from repro.serve import AdmissionEngine

#: Scenarios drawn from the default (star/dual-switch/tree) stream.
SINGLE_MUX_COUNT = 170
#: Scenarios drawn from the all-graph multi-hop stream.
GRAPH_COUNT = 40
#: Every N-th scenario additionally runs the full self-verification
#: (committed aggregates vs the reference loop) — O(flows) per call.
VERIFY_EVERY = 10


def probe(index):
    """A deterministic probe flow; station-00/01 exist in every drawn
    topology (station counts start at 4, graph replication is 1)."""
    return {"name": f"metamorphic-probe-{index}", "kind": "sporadic",
            "period": 0.5, "size": 400.0, "source": "station-00",
            "destination": "station-01", "deadline": None}


def assert_admit_remove_is_identity(scenario, index):
    engine = AdmissionEngine(scenario)
    state_before = engine.state_fingerprint()
    bounds_before = engine.snapshot().bounds_fingerprint()
    flow = probe(index)

    decision = engine.admit(flow, force=True)
    assert decision.applied, \
        f"{scenario.name}: forced admit must always apply"
    assert engine.state_fingerprint() != state_before, \
        f"{scenario.name}: admit must change the state fingerprint"

    removal = engine.remove(flow["name"])
    assert removal.applied
    assert engine.state_fingerprint() == state_before, \
        f"{scenario.name}: state fingerprint not restored byte-identically"
    assert engine.snapshot().bounds_fingerprint() == bounds_before, \
        f"{scenario.name}: bounds fingerprint not restored byte-identically"
    if index % VERIFY_EVERY == 0:
        assert engine.verify()


class TestAdmitRemoveIdentity:
    def test_across_the_generated_single_mux_stream(self):
        generator = ScenarioGenerator(seed=2026)
        for index in range(SINGLE_MUX_COUNT):
            scenario = generator.scenario(index)
            # The engine mutates individual flows, so replicated
            # workloads are drawn down to replication 1.
            if scenario.workload.replication != 1:
                scenario = replace(
                    scenario,
                    workload=replace(scenario.workload, replication=1))
            assert_admit_remove_is_identity(scenario, index)

    def test_across_the_generated_multi_hop_stream(self):
        generator = ScenarioGenerator(seed=2027,
                                      config=GeneratorConfig.multi_hop())
        for index in range(GRAPH_COUNT):
            assert_admit_remove_is_identity(generator.scenario(index),
                                            index)

    def test_the_campaign_covers_at_least_200_scenarios(self):
        """The acceptance floor of the metamorphic campaign."""
        assert SINGLE_MUX_COUNT + GRAPH_COUNT >= 200


class TestRepeatedMutationIdentity:
    """A longer admit/remove round trip on a few scenarios: admitting K
    probes and removing them in reverse order is also the identity
    (reverse order keeps every prefix identical to a fresh build)."""

    @pytest.mark.parametrize("index", [0, 7, 23])
    def test_k_probe_round_trip(self, index):
        scenario = ScenarioGenerator(seed=2028).scenario(index)
        if scenario.workload.replication != 1:
            scenario = replace(
                scenario,
                workload=replace(scenario.workload, replication=1))
        engine = AdmissionEngine(scenario)
        state = engine.state_fingerprint()
        bounds = engine.snapshot().bounds_fingerprint()
        for k in range(5):
            assert engine.admit(probe(1000 + k), force=True).applied
        for k in reversed(range(5)):
            assert engine.remove(f"metamorphic-probe-{1000 + k}").applied
        assert engine.state_fingerprint() == state
        assert engine.snapshot().bounds_fingerprint() == bounds
        assert engine.verify()
