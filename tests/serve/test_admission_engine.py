"""The incremental admission-control engine."""

import math

import pytest

from repro import units
from repro.campaigns.scenario import Scenario, TopologySpec, WorkloadSpec
from repro.errors import ConfigurationError
from repro.serve import (
    AdmissionEngine,
    message_from_payload,
    message_to_payload,
)
from repro.store import ResultStore


def star_scenario(stations=6, seed=3, capacity_mbps=10.0,
                  policies=("fcfs", "strict-priority")):
    return Scenario(name="serve-star", description="engine test scenario",
                    workload=WorkloadSpec(station_count=stations, seed=seed),
                    topology=TopologySpec("single-switch-star"),
                    capacity=units.mbps(capacity_mbps),
                    technology_delay=units.us(16.0),
                    policies=policies)


def graph_scenario(stations=6, seed=3):
    return Scenario(name="serve-graph", description="engine graph scenario",
                    workload=WorkloadSpec(station_count=stations, seed=seed),
                    topology=TopologySpec(kind="graph",
                                          graph_family="diamond",
                                          graph_switches=4,
                                          graph_seed=0,
                                          graph_extra_links=0),
                    capacity=units.mbps(10.0),
                    technology_delay=units.us(16.0),
                    policies=("strict-priority",))


def probe(name="probe-1", **overrides):
    payload = {"name": name, "kind": "sporadic", "period": 1.0,
               "size": 100.0, "source": "station-00",
               "destination": "station-01", "deadline": None}
    payload.update(overrides)
    return payload


class TestPayloadRoundTrip:
    def test_round_trip_is_identity(self):
        message = message_from_payload(probe(deadline=0.02))
        assert message_from_payload(message_to_payload(message)) == message

    def test_int_numerics_are_canonicalised_to_float(self):
        """A freshly built workload carries int sizes; the payload must
        fingerprint identically after a JSON round trip."""
        payload = message_to_payload(message_from_payload(
            probe(period=1, size=304)))
        assert isinstance(payload["period"], float)
        assert isinstance(payload["size"], float)

    def test_unknown_field_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown flow field"):
            message_from_payload(probe(priority=3))

    def test_missing_field_is_rejected(self):
        payload = probe()
        del payload["period"]
        with pytest.raises(ConfigurationError, match="missing field"):
            message_from_payload(payload)

    def test_bad_kind_is_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            message_from_payload(probe(kind="continuous"))

    def test_non_object_is_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            message_from_payload([1, 2, 3])

    def test_bad_values_are_rejected(self):
        with pytest.raises(ConfigurationError, match="period must be"):
            message_from_payload(probe(period=0.0))

    def test_kind_defaults_to_sporadic(self):
        payload = probe()
        del payload["kind"]
        assert message_from_payload(payload).kind.value == "sporadic"


class TestEngineConstruction:
    def test_preload_loads_the_workload(self):
        scenario = star_scenario()
        engine = AdmissionEngine(scenario, "strict-priority")
        expected = len(scenario.workload.build().messages)
        assert engine.snapshot().flow_count == expected
        assert len(engine.flow_names()) == expected

    def test_default_policy_is_the_scenarios_first(self):
        engine = AdmissionEngine(star_scenario())
        assert engine.policy == "fcfs"

    def test_unknown_policy_is_rejected(self):
        with pytest.raises(ConfigurationError, match="policy"):
            AdmissionEngine(star_scenario(), "wfq")

    def test_replicated_workload_is_rejected(self):
        scenario = Scenario(
            name="replicated", description="replicated workload",
            workload=WorkloadSpec(station_count=4, replication=2))
        with pytest.raises(ConfigurationError, match="replication"):
            AdmissionEngine(scenario)


class TestAdmissionSemantics:
    def test_feasible_admit_commits(self):
        engine = AdmissionEngine(star_scenario(), "strict-priority")
        before = engine.snapshot().flow_count
        decision = engine.admit(probe())
        assert decision.applied
        assert engine.snapshot().flow_count == before + 1
        assert "probe-1" in engine.flow_names()

    def test_duplicate_name_is_rejected(self):
        engine = AdmissionEngine(star_scenario(), "strict-priority")
        assert engine.admit(probe()).applied
        decision = engine.admit(probe())
        assert not decision.applied
        assert "already admitted" in decision.reasons[0]

    def test_infeasible_admit_leaves_committed_state_untouched(self):
        # Under FCFS the paper's workload is already near its URGENT
        # deadline; a heavy urgent flow breaks it.
        engine = AdmissionEngine(star_scenario(stations=16, seed=7), "fcfs")
        state_before = engine.state_fingerprint()
        bounds_before = engine.snapshot().bounds_fingerprint()
        decision = engine.admit(probe(period=0.002, size=8000.0,
                                      deadline=0.002))
        assert not decision.applied
        assert decision.reasons
        assert engine.state_fingerprint() == state_before
        assert engine.snapshot().bounds_fingerprint() == bounds_before

    def test_force_admit_commits_and_still_reports_violations(self):
        engine = AdmissionEngine(star_scenario(stations=16, seed=7), "fcfs")
        decision = engine.admit(probe(period=0.002, size=8000.0,
                                      deadline=0.002), force=True)
        assert decision.applied
        assert decision.reasons
        assert "probe-1" in engine.flow_names()
        assert engine.verify()

    def test_remove_unknown_flow_is_reported(self):
        engine = AdmissionEngine(star_scenario(), "strict-priority")
        decision = engine.remove("no-such-flow")
        assert not decision.applied
        assert "not admitted" in decision.reasons[0]

    def test_check_without_flow_returns_committed_snapshot(self):
        engine = AdmissionEngine(star_scenario(), "strict-priority")
        decision = engine.check()
        assert decision.operation == "check"
        assert decision.snapshot is engine.snapshot()

    def test_what_if_check_never_mutates(self):
        engine = AdmissionEngine(star_scenario(), "strict-priority")
        state = engine.state_fingerprint()
        hypothetical = engine.check(probe())
        assert hypothetical.snapshot.flow_count == \
            engine.snapshot().flow_count + 1
        assert engine.state_fingerprint() == state
        assert "probe-1" not in engine.flow_names()


class TestBitIdentity:
    """The headline invariant: incremental == from-scratch, bit for bit."""

    def test_verify_after_a_mutation_storm(self):
        engine = AdmissionEngine(star_scenario(stations=8, seed=5),
                                 "strict-priority")
        for index in range(12):
            engine.admit(probe(f"storm-{index}", period=0.5 + index * 0.125,
                               size=200.0 + 8.0 * index), force=True)
            assert engine.verify()
        for index in range(0, 12, 2):
            assert engine.remove(f"storm-{index}").applied
            assert engine.verify()

    def test_admit_uses_the_incremental_path_on_star(self):
        engine = AdmissionEngine(star_scenario(), "strict-priority")
        before = engine.incremental_hits
        engine.admit(probe())
        assert engine.incremental_hits == before + 1

    def test_snapshot_modes_are_labelled(self):
        engine = AdmissionEngine(star_scenario(), "strict-priority")
        assert engine.snapshot().mode == "recompute"  # initial load
        engine.admit(probe())
        assert engine.snapshot().mode == "incremental"

    def test_mode_does_not_change_the_bounds_fingerprint(self):
        engine = AdmissionEngine(star_scenario(), "strict-priority")
        engine.admit(probe())
        committed = engine.snapshot()
        fresh = engine._derive_snapshot(
            engine._classes, list(engine._flows.values()), "recompute",
            engine.state_fingerprint())
        assert fresh.mode != committed.mode
        assert fresh.bounds_fingerprint() == committed.bounds_fingerprint()

    def test_unstable_overload_is_reported_not_crashed(self):
        engine = AdmissionEngine(star_scenario(stations=20, seed=1,
                                               capacity_mbps=0.2), "fcfs")
        snapshot = engine.snapshot()
        assert not snapshot.feasible
        assert any(not bound.stable for bound in snapshot.classes)
        assert any(math.isinf(bound.bound) for bound in snapshot.classes)
        assert engine.verify()


class TestStoreCache:
    def test_restarted_engine_warm_hits_the_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scenario = star_scenario()
        AdmissionEngine(scenario, "strict-priority", store)
        writes = store.stats.writes
        assert writes >= 1
        hits_before = store.stats.hits
        second = AdmissionEngine(scenario, "strict-priority", store)
        assert store.stats.hits > hits_before
        assert store.stats.writes == writes  # nothing recomputed
        assert second.verify()

    def test_cached_and_computed_snapshots_are_identical(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scenario = star_scenario()
        cold = AdmissionEngine(scenario, "strict-priority", store)
        warm = AdmissionEngine(scenario, "strict-priority", store)
        assert cold.snapshot().to_payload() == warm.snapshot().to_payload()
        bare = AdmissionEngine(scenario, "strict-priority")
        assert bare.snapshot().bounds_fingerprint() == \
            cold.snapshot().bounds_fingerprint()


class TestGraphFallback:
    def test_graph_engine_full_recomputes(self):
        engine = AdmissionEngine(graph_scenario())
        assert engine.snapshot().mode == "recompute"
        before = engine.full_recomputes
        decision = engine.admit(probe(), force=True)
        assert decision.applied
        assert engine.full_recomputes > before
        assert engine.incremental_hits == 0
        assert engine.verify()

    def test_graph_admit_then_remove_restores_fingerprints(self):
        engine = AdmissionEngine(graph_scenario())
        state = engine.state_fingerprint()
        bounds = engine.snapshot().bounds_fingerprint()
        assert engine.admit(probe(), force=True).applied
        assert engine.remove("probe-1").applied
        assert engine.state_fingerprint() == state
        assert engine.snapshot().bounds_fingerprint() == bounds

    def test_unknown_station_is_a_configuration_error(self):
        engine = AdmissionEngine(graph_scenario())
        state = engine.state_fingerprint()
        with pytest.raises(ConfigurationError):
            engine.admit(probe(source="no-such-node"), force=True)
        # The tentative derivation raised before any commit.
        assert engine.state_fingerprint() == state
        assert engine.verify()


class TestReplay:
    def test_replay_equals_direct_mutations(self):
        scenario = star_scenario()
        direct = AdmissionEngine(scenario, "strict-priority")
        direct.admit(probe("replayed-1"), force=True)
        direct.admit(probe("replayed-2", size=200.0), force=True)
        direct.remove("replayed-1")

        recovered = AdmissionEngine(scenario, "strict-priority",
                                    preload=False)
        base = AdmissionEngine(scenario, "strict-priority")
        recovered.replay(
            [{"op": "admit", "flow": payload}
             for payload in base.flow_payloads()]
            + [{"op": "admit", "flow": probe("replayed-1")},
               {"op": "admit", "flow": probe("replayed-2", size=200.0)},
               {"op": "remove", "name": "replayed-1"}])
        assert recovered.state_fingerprint() == direct.state_fingerprint()
        assert recovered.snapshot().bounds_fingerprint() == \
            direct.snapshot().bounds_fingerprint()
        assert recovered.verify()

    def test_replay_ignores_removes_of_absent_flows(self):
        engine = AdmissionEngine(star_scenario(), "strict-priority",
                                 preload=False)
        engine.replay([{"op": "remove", "name": "never-admitted"}])
        assert engine.snapshot().flow_count == 0

    def test_replay_rejects_unknown_operations(self):
        engine = AdmissionEngine(star_scenario(), "strict-priority",
                                 preload=False)
        with pytest.raises(ConfigurationError, match="unknown journal"):
            engine.replay([{"op": "upsert", "name": "x"}])
