"""The campaign runner: batched analysis with and without memoization."""

import math

import pytest

from repro.analysis.paper_model import PaperCaseStudy
from repro.campaigns import (
    AnalysisCache,
    CampaignRunner,
    Scenario,
    TopologySpec,
    WorkloadSpec,
    builtin_scenarios,
    select,
)

SPEC = WorkloadSpec(station_count=8, seed=3)

PAPER = Scenario(name="t-paper", description="paper single point",
                 workload=SPEC)
LADDER = [Scenario(name=f"t-x{k}", description="rung",
                   workload=WorkloadSpec(station_count=8, seed=3,
                                         replication=k))
          for k in (1, 2, 4, 8)]


class TestAgainstPaperCaseStudy:
    """The memoized pipeline must reproduce the E1 reference analysis."""

    @pytest.fixture(scope="class")
    def result(self):
        return CampaignRunner().run([PAPER]).results[0]

    @pytest.fixture(scope="class")
    def study(self):
        return PaperCaseStudy(SPEC.build())

    def test_fcfs_bounds_match_figure1(self, result, study):
        reference = {row.priority: row for row in study.figure1_rows()}
        for row in result.rows_for("fcfs"):
            assert row.bound == pytest.approx(
                reference[row.priority].fcfs_bound)

    def test_priority_bounds_match_figure1(self, result, study):
        reference = {row.priority: row for row in study.figure1_rows()}
        for row in result.rows_for("strict-priority"):
            assert row.bound == pytest.approx(
                reference[row.priority].priority_bound)
            assert row.message_count == reference[row.priority].message_count
            assert row.deadline == reference[row.priority].deadline

    def test_feasibility_verdicts_match_the_paper_claims(self, result, study):
        assert result.feasible("fcfs") is not study.fcfs_violates_constraints()
        assert result.feasible("strict-priority") \
            == study.priority_meets_all_constraints()


class TestMemoizedEqualsNaive:
    def test_every_row_is_identical(self):
        memoized = CampaignRunner().run(builtin_scenarios())
        naive = CampaignRunner(memoize=False).run(builtin_scenarios())
        assert len(memoized.rows()) == len(naive.rows())
        for a, b in zip(memoized.rows(), naive.rows()):
            assert (a.scenario, a.policy, a.priority) \
                == (b.scenario, b.policy, b.priority)
            assert a.stable == b.stable
            assert a.message_count == b.message_count
            if math.isfinite(a.bound):
                assert a.bound == pytest.approx(b.bound)
            else:
                assert math.isinf(b.bound)
            if math.isfinite(a.backlog_bits):
                assert a.backlog_bits == pytest.approx(b.backlog_bits)

    def test_naive_mode_keeps_no_cache_statistics(self):
        result = CampaignRunner(memoize=False).run([PAPER])
        assert result.stats == {}


class TestMemoization:
    def test_ladder_builds_the_base_set_once(self):
        runner = CampaignRunner()
        result = runner.run(LADDER)
        assert result.stats["base_sets"].misses == 1
        assert result.stats["base_aggregates"].hits == len(LADDER) - 1

    def test_a_warm_cache_is_reused_across_campaigns(self):
        cache = AnalysisCache()
        CampaignRunner(cache).run(LADDER)
        second = CampaignRunner(cache).run(LADDER)
        assert second.stats["bounds"].misses == len(LADDER) * 2
        assert second.stats["bounds"].hits == len(LADDER) * 2

    def test_result_stats_are_snapshots_not_live_counters(self):
        runner = CampaignRunner()
        first = runner.run(LADDER)
        before = (first.stats["bounds"].hits, first.stats["bounds"].misses)
        runner.run(LADDER)  # keeps mutating the shared cache
        assert (first.stats["bounds"].hits,
                first.stats["bounds"].misses) == before


class TestOverload:
    def test_unstable_classes_are_reported_not_raised(self):
        result = CampaignRunner().run(select("overload")).results[0]
        fcfs = result.rows_for("fcfs")
        assert fcfs and all(math.isinf(row.bound) and not row.stable
                            for row in fcfs)
        priority = result.rows_for("strict-priority")
        assert any(row.stable for row in priority)
        assert any(not row.stable for row in priority)
        assert not result.feasible("fcfs")


class TestMultiHop:
    def test_extra_multiplexing_points_increase_the_bound(self):
        star = Scenario(name="t-star", description="", workload=SPEC)
        tree = Scenario(name="t-tree", description="", workload=SPEC,
                        topology=TopologySpec(kind="tree"))
        result = CampaignRunner().run([star, tree])
        one, three = result.results
        for near, far in zip(one.rows, three.rows):
            assert far.bound > near.bound
            assert far.hops == 3 and near.hops == 1


class TestRendering:
    @pytest.fixture(scope="class")
    def result(self):
        return CampaignRunner().run([PAPER] + LADDER[1:])

    def test_ascii_tables(self, result):
        text = result.to_table()
        assert "Campaign summary" in text
        assert "Per-class worst-case bounds" in text
        assert "t-paper" in text and "t-x8" in text

    def test_markdown_tables(self, result):
        markdown = result.to_markdown()
        assert "### Campaign summary" in markdown
        assert "| --- |" in markdown

    def test_csv_round_trip(self, result, tmp_path):
        target = tmp_path / "campaign.csv"
        result.write_csv(target)
        lines = target.read_text().strip().splitlines()
        assert lines[0].startswith("scenario,policy,priority")
        assert len(lines) == len(result.rows()) + 1


class TestParallelJobs:
    """CampaignRunner(jobs=N): process fan-out over the scenarios."""

    def test_rows_identical_to_the_sequential_run(self):
        scenarios = builtin_scenarios()
        sequential = CampaignRunner().run(scenarios)
        parallel = CampaignRunner(jobs=3).run(scenarios)
        assert [r.scenario.name for r in parallel.results] == \
            [r.scenario.name for r in sequential.results]
        assert [r.rows for r in parallel.results] == \
            [r.rows for r in sequential.results]

    def test_naive_mode_also_fans_out(self):
        parallel = CampaignRunner(memoize=False, jobs=2).run(LADDER)
        sequential = CampaignRunner(memoize=False).run(LADDER)
        assert [r.rows for r in parallel.results] == \
            [r.rows for r in sequential.results]

    def test_parallel_runs_report_no_cache_statistics(self):
        result = CampaignRunner(jobs=2).run(LADDER)
        assert result.stats == {}

    def test_single_scenario_stays_in_process(self):
        result = CampaignRunner(jobs=4).run([PAPER])
        assert result.stats  # in-process memoized path keeps its counters

    def test_invalid_job_count_rejected(self):
        with pytest.raises(ValueError):
            CampaignRunner(jobs=0)
