"""The scenario registry and its builtin catalogue."""

import pytest

from repro.campaigns import registry
from repro.campaigns.scenario import Scenario, TopologySpec, WorkloadSpec
from repro.errors import (
    DuplicateScenarioError,
    InvalidTopologyError,
    InvalidWorkloadError,
    UnknownScenarioError,
)


class TestBuiltinCatalogue:
    def test_at_least_eight_scenarios(self):
        assert len(registry.builtin_scenarios()) >= 8

    def test_names_are_unique_and_ordered(self):
        names = registry.names()
        assert len(names) == len(set(names))
        assert names[0] == "paper-real-case"

    def test_expected_families_are_present(self):
        names = set(registry.names())
        for expected in ("paper-real-case", "figure1-fast-ethernet",
                         "dual-switch", "tree-federated", "overload",
                         "high-jitter", "milstd1553-migration",
                         "scalability-x8"):
            assert expected in names

    def test_every_scenario_builds_its_topology(self):
        for scenario in registry.builtin_scenarios():
            network = scenario.topology.build(
                scenario.workload.station_count,
                capacity=scenario.capacity,
                technology_delay=max(scenario.technology_delay, 1e-9))
            assert len(network.stations) >= 4

    def test_ladder_tag_selects_the_scalability_rungs(self):
        ladder = registry.select("ladder")
        assert len(ladder) >= 4
        assert all("scalability" in s.name for s in ladder)


class TestSelection:
    def test_select_all(self):
        assert registry.select("all") == registry.builtin_scenarios()

    def test_select_by_name_list_deduplicates(self):
        chosen = registry.select("paper-real-case, paper-real-case,overload")
        assert [s.name for s in chosen] == ["paper-real-case", "overload"]

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownScenarioError, match="unknown scenario"):
            registry.select("does-not-exist")

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownScenarioError):
            registry.get("does-not-exist")

    def test_duplicate_registration_is_rejected(self):
        scenario = registry.get("paper-real-case")
        with pytest.raises(DuplicateScenarioError,
                           match="already registered"):
            registry.register(scenario)
        registry.register(scenario, replace=True)  # idempotent overwrite

    def test_a_name_always_wins_over_a_same_spelled_tag(self):
        shadow = Scenario(name="ladder", description="name/tag collision",
                          workload=WorkloadSpec())
        registry.register(shadow)
        try:
            assert registry.select("ladder") == [shadow]
        finally:
            registry._REGISTRY.pop("ladder", None)


class TestSpecValidation:
    def test_workload_spec_rejects_bad_parameters(self):
        with pytest.raises(InvalidWorkloadError):
            WorkloadSpec(station_count=2)
        with pytest.raises(InvalidWorkloadError):
            WorkloadSpec(size_factor=0.0)
        with pytest.raises(InvalidWorkloadError):
            WorkloadSpec(replication=0)

    def test_topology_spec_rejects_unknown_kind(self):
        with pytest.raises(InvalidTopologyError):
            TopologySpec(kind="ring")

    def test_scenario_rejects_unknown_policy(self):
        with pytest.raises(InvalidWorkloadError):
            Scenario(name="x", description="", policies=("wfq",))

    def test_multiplexing_points_follow_the_paper_accounting(self):
        assert TopologySpec("single-switch-star").multiplexing_points == 1
        assert TopologySpec("dual-switch").multiplexing_points == 2
        assert TopologySpec("tree").multiplexing_points == 3

    def test_specs_are_hashable_cache_keys(self):
        assert hash(WorkloadSpec()) == hash(WorkloadSpec())
        assert len({registry.get("overload"),
                    registry.get("overload")}) == 1
