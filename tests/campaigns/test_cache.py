"""The memoizing analysis cache."""

import pytest

from repro.campaigns.cache import AnalysisCache
from repro.campaigns.scenario import WorkloadSpec
from repro.core.multiplexer import (
    FcfsMultiplexerAnalysis,
    StrictPriorityMultiplexerAnalysis,
    aggregate_flows,
)
from repro.flows.priorities import PriorityClass


@pytest.fixture()
def cache() -> AnalysisCache:
    return AnalysisCache()


SPEC = WorkloadSpec(station_count=8, seed=3)


class TestAggregates:
    def test_aggregates_match_a_direct_pass_over_the_messages(self, cache):
        direct = aggregate_flows(SPEC.build().messages)
        cached = cache.aggregates(SPEC)
        assert set(cached) == set(direct)
        for cls in direct:
            assert cached[cls].count == direct[cls].count
            assert cached[cls].burst == pytest.approx(direct[cls].burst)
            assert cached[cls].rate == pytest.approx(direct[cls].rate)
            assert cached[cls].max_burst == direct[cls].max_burst

    def test_scaled_aggregates_match_the_materialised_replication(self, cache):
        spec = WorkloadSpec(station_count=8, seed=3, replication=4)
        materialised = aggregate_flows(spec.build().messages)
        derived = cache.aggregates(spec)
        for cls in materialised:
            assert derived[cls].count == materialised[cls].count
            assert derived[cls].burst == pytest.approx(
                materialised[cls].burst)
            assert derived[cls].rate == pytest.approx(materialised[cls].rate)
            assert derived[cls].max_burst == pytest.approx(
                materialised[cls].max_burst)

    def test_replicated_specs_share_the_base_message_set(self, cache):
        cache.aggregates(SPEC)
        cache.aggregates(WorkloadSpec(station_count=8, seed=3, replication=2))
        cache.aggregates(WorkloadSpec(station_count=8, seed=3, replication=8))
        # One base build (miss), the other two rungs reuse it (hits).
        assert cache.stats["base_sets"].misses == 1
        assert cache.stats["base_aggregates"].misses == 1
        assert cache.stats["base_aggregates"].hits == 2

    def test_repeated_lookups_hit(self, cache):
        cache.aggregates(SPEC)
        cache.aggregates(SPEC)
        assert cache.stats["aggregates"].hits == 1
        assert cache.stats["aggregates"].misses == 1


class TestBounds:
    def test_fcfs_bounds_match_the_multiplexer_analysis(self, cache):
        messages = SPEC.build().messages
        expected = FcfsMultiplexerAnalysis(
            capacity=10e6, technology_delay=16e-6).bound(messages)
        bounds = cache.class_bounds(SPEC, 10e6, 16e-6, "fcfs")
        for cls, bound in bounds.items():
            assert bound.delay == pytest.approx(expected.delay)

    def test_priority_bounds_match_the_multiplexer_analysis(self, cache):
        messages = SPEC.build().messages
        expected = StrictPriorityMultiplexerAnalysis(
            capacity=10e6, technology_delay=16e-6).class_bounds(messages)
        bounds = cache.class_bounds(SPEC, 10e6, 16e-6, "strict-priority")
        assert set(bounds) == set(expected)
        for cls in expected:
            assert bounds[cls].delay == pytest.approx(expected[cls].delay)

    def test_saturated_class_maps_to_none(self, cache):
        spec = WorkloadSpec(station_count=8, seed=3, replication=64)
        bounds = cache.class_bounds(spec, 1e6, 0.0, "strict-priority")
        assert bounds[PriorityClass.BACKGROUND] is None
        # The urgent class alone does not saturate a 1 Mbps link.
        assert bounds[PriorityClass.URGENT] is not None

    def test_bounds_are_memoized_per_configuration(self, cache):
        cache.class_bounds(SPEC, 10e6, 16e-6, "fcfs")
        cache.class_bounds(SPEC, 10e6, 16e-6, "fcfs")
        cache.class_bounds(SPEC, 100e6, 16e-6, "fcfs")
        assert cache.stats["bounds"].hits == 1
        assert cache.stats["bounds"].misses == 2


class TestCurves:
    def test_service_curve_matches_the_residual_curve(self, cache):
        messages = SPEC.build().messages
        expected = StrictPriorityMultiplexerAnalysis(
            capacity=10e6, technology_delay=16e-6).residual_service_curve(
                messages, PriorityClass.PERIODIC)
        curve = cache.service_curve(SPEC, 10e6, 16e-6, "strict-priority",
                                    PriorityClass.PERIODIC)
        assert curve.rate == pytest.approx(expected.rate)
        assert curve.delay == pytest.approx(expected.delay)

    def test_fcfs_service_curve_is_the_link_after_t_techno(self, cache):
        curve = cache.service_curve(SPEC, 10e6, 16e-6, "fcfs")
        assert curve.rate == 10e6
        assert curve.delay == 16e-6

    def test_arrival_curve_aggregates_up_to_the_class(self, cache):
        aggregates = cache.aggregates(SPEC)
        curve = cache.arrival_curve(SPEC, PriorityClass.PERIODIC)
        expected_bucket = sum(a.burst for cls, a in aggregates.items()
                              if cls <= PriorityClass.PERIODIC)
        assert curve.bucket == pytest.approx(expected_bucket)

    def test_full_arrival_curve_covers_every_class(self, cache):
        aggregates = cache.aggregates(SPEC)
        curve = cache.arrival_curve(SPEC, None)
        assert curve.bucket == pytest.approx(
            sum(a.burst for a in aggregates.values()))
        assert curve.token_rate == pytest.approx(
            sum(a.rate for a in aggregates.values()))


class TestClassDeadlines:
    def test_deadlines_are_replication_invariant(self, cache):
        base = cache.class_deadlines(SPEC)
        scaled = cache.class_deadlines(
            WorkloadSpec(station_count=8, seed=3, replication=4))
        assert base == scaled
        assert base[PriorityClass.URGENT] == pytest.approx(3e-3)
        assert base[PriorityClass.BACKGROUND] is None
