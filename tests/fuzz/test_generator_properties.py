"""Properties of the seeded scenario generator.

The fuzz campaign's resumability and the committed corpus both rest on one
property: the same ``(seed, index)`` pair yields the bit-identical scenario
in any process.  These tests pin it down — including across a genuinely
separate interpreter with a different ``PYTHONHASHSEED`` — and check that
every generated spec is valid by construction.
"""

import dataclasses
import json
import subprocess
import sys

import pytest

from repro.campaigns.scenario import Scenario
from repro.errors import ConfigurationError
from repro.fuzz import (
    GeneratorConfig,
    ScenarioGenerator,
    derive_substream_seed,
    scenario_to_spec,
)
from repro.store import fingerprint

#: A slice big enough to hit every choice list, small enough to stay fast.
SAMPLE = 40


class TestSubstreamSeeds:
    def test_pinned_values_never_move(self):
        # Frozen constants: a change here silently invalidates every
        # committed corpus entry's provenance and every stored fuzz cell.
        assert derive_substream_seed(0, 0) == 1417198243365455367
        assert derive_substream_seed(0, 1) == 16909249452324562151
        assert derive_substream_seed(7, 0) == 14143933479194075637

    def test_streams_are_pairwise_distinct(self):
        seeds = {derive_substream_seed(seed, index)
                 for seed in range(4) for index in range(64)}
        assert len(seeds) == 4 * 64

    def test_independent_of_generation_order(self):
        generator = ScenarioGenerator(3)
        forward = [generator.scenario(i) for i in range(8)]
        backward = [generator.scenario(i) for i in reversed(range(8))]
        assert forward == list(reversed(backward))


class TestSameSeedDeterminism:
    def test_two_generators_agree_spec_for_spec(self):
        first = ScenarioGenerator(11).generate(SAMPLE)
        second = ScenarioGenerator(11).generate(SAMPLE)
        assert first == second
        assert fingerprint(first) == fingerprint(second)

    def test_different_seeds_diverge(self):
        assert (fingerprint(ScenarioGenerator(0).generate(SAMPLE))
                != fingerprint(ScenarioGenerator(1).generate(SAMPLE)))

    def test_cross_process_specs_and_fingerprint_are_identical(self):
        # A separate interpreter with a different hash seed must emit the
        # byte-identical spec stream — the property resumable campaigns
        # and the committed corpus depend on.
        program = (
            "import json, sys\n"
            "from repro.fuzz import ScenarioGenerator\n"
            "from repro.fuzz.corpus import scenario_to_spec\n"
            "from repro.store import fingerprint\n"
            f"scenarios = ScenarioGenerator(5).generate({SAMPLE})\n"
            "json.dump({'specs': [scenario_to_spec(s) for s in scenarios],"
            " 'fingerprint': fingerprint(scenarios)}, sys.stdout)\n")
        outputs = []
        for hash_seed in ("0", "12345"):
            process = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": ":".join(sys.path),
                     "PYTHONHASHSEED": hash_seed})
            outputs.append(json.loads(process.stdout))
        local = ScenarioGenerator(5).generate(SAMPLE)
        expected = {"specs": [scenario_to_spec(s) for s in local],
                    "fingerprint": fingerprint(local)}
        assert outputs[0] == expected
        assert outputs[1] == expected


class TestGeneratedSpecsAreValid:
    def test_specs_build_and_describe(self):
        for scenario in ScenarioGenerator(2).generate(SAMPLE):
            assert isinstance(scenario, Scenario)
            # Scenario/WorkloadSpec/TopologySpec validate in __post_init__;
            # building the workload exercises the full registry path.
            message_set = scenario.workload.build()
            assert len(message_set.messages) > 0
            assert scenario.describe()

    def test_names_and_tags_carry_the_provenance(self):
        scenario = ScenarioGenerator(4).scenario(17)
        assert scenario.name == "fuzz-4-00017"
        assert "fuzz" in scenario.tags
        assert "fuzz-seed-4" in scenario.tags

    def test_every_field_comes_from_the_choice_lists(self):
        config = GeneratorConfig()
        for scenario in ScenarioGenerator(9).generate(SAMPLE):
            assert scenario.workload.station_count in config.station_counts
            assert scenario.workload.seed in config.workload_seeds
            assert scenario.workload.size_factor in config.size_factors
            assert scenario.workload.replication in config.replications
            assert scenario.topology.kind in config.topology_kinds
            assert scenario.topology.leaf_count in config.leaf_counts
            assert scenario.capacity / 1e6 in config.capacities_mbps
            assert scenario.policies in config.policy_mixes

    def test_specs_survive_a_json_round_trip(self):
        # The choice lists only hold short literals, so the JSON corpus
        # format reproduces every float bit-for-bit.
        for scenario in ScenarioGenerator(6).generate(SAMPLE):
            spec = json.loads(json.dumps(scenario_to_spec(scenario)))
            from repro.fuzz import scenario_from_spec
            assert scenario_from_spec(spec) == scenario


class TestMultiHopStream:
    def test_multi_hop_config_draws_only_graph_scenarios(self):
        config = GeneratorConfig.multi_hop()
        for scenario in ScenarioGenerator(3, config).generate(SAMPLE):
            topology = scenario.topology
            assert topology.kind == "graph"
            assert topology.graph_family in config.graph_families
            assert topology.graph_switches in config.graph_switch_counts
            assert topology.graph_seed in config.graph_seeds
            assert topology.graph_extra_links in config.graph_extra_links
            # Graph scenarios never replicate the workload.
            assert scenario.workload.replication == 1

    def test_graph_scenarios_build_valid_topologies(self):
        config = GeneratorConfig.multi_hop()
        for scenario in ScenarioGenerator(5, config).generate(8):
            spec = scenario.topology.build_graph(
                scenario.workload.total_stations, scenario.capacity,
                scenario.technology_delay)
            assert spec.problems() == ()

    def test_graph_scenarios_survive_a_json_round_trip(self):
        from repro.fuzz import scenario_from_spec
        config = GeneratorConfig.multi_hop()
        for scenario in ScenarioGenerator(8, config).generate(8):
            spec = json.loads(json.dumps(scenario_to_spec(scenario)))
            assert scenario_from_spec(spec) == scenario

    def test_adding_graph_choices_keeps_the_legacy_stream_stable(self):
        """New graph draw lists must not perturb legacy scenarios.

        The graph substream is only consumed on the ``graph`` branch, so
        a default (legacy-kinds) generator yields the same scenarios it
        did before the graph fields existed — committed corpus entries
        and store keys stay valid.
        """
        default = ScenarioGenerator(7).generate(SAMPLE)
        widened = ScenarioGenerator(7, dataclasses.replace(
            GeneratorConfig(),
            graph_families=("ring",), graph_seeds=(99,))).generate(SAMPLE)
        assert default == widened

    def test_empty_graph_choice_list_rejected(self):
        with pytest.raises(ConfigurationError):
            GeneratorConfig(graph_families=())
        with pytest.raises(ConfigurationError):
            GeneratorConfig(graph_switch_counts=())


class TestValidation:
    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioGenerator(-1)

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioGenerator(0).scenario(-1)

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioGenerator(0).generate(0)

    def test_empty_choice_list_rejected(self):
        with pytest.raises(ConfigurationError):
            GeneratorConfig(station_counts=())

    def test_custom_config_restricts_the_stream(self):
        config = dataclasses.replace(
            GeneratorConfig(), station_counts=(4,), replications=(1,))
        for scenario in ScenarioGenerator(0, config).generate(10):
            assert scenario.workload.station_count == 4
            assert scenario.workload.replication == 1
