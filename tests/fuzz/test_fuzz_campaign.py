"""The fuzz campaign: invariants, store resume, shrinking, persistence."""

import dataclasses
import math

import pytest

from repro.campaigns.scenario import Scenario, TopologySpec, WorkloadSpec
from repro.errors import ConfigurationError
from repro.flows.priorities import PriorityClass
from repro.fuzz import (
    FuzzBoundRow,
    FuzzCampaign,
    FuzzPortRow,
    FuzzResult,
    GeneratorConfig,
    ScenarioGenerator,
    evaluate_scenario,
    minimize_scenario,
    persist_interesting,
)
from repro.fuzz.campaign import (
    FuzzCell,
    FuzzOutcome,
    _invariant_violations,
    _outcome_from_payload,
    _outcome_to_payload,
)
from repro.store import ResultStore, canonical_json
from repro import units

#: A fast generator slice: small stars only, no replication, 10 Mbps.
FAST = GeneratorConfig(
    station_counts=(4, 5), replications=(1,),
    topology_kinds=("single-switch-star",), capacities_mbps=(10.0,),
    size_factors=(0.5, 1.0))

#: A short horizon keeps each double-evaluated cell around 50 ms.
HORIZON = units.ms(40)


def _campaign(**overrides) -> FuzzCampaign:
    options = dict(count=3, seed=1, config=FAST, duration=HORIZON)
    options.update(overrides)
    return FuzzCampaign(**options)


def _result_payloads(result: FuzzResult) -> str:
    """The deterministic substance of a result (wall-clock excluded)."""
    payloads = [_outcome_to_payload(outcome)
                for outcome in result.outcomes]
    return canonical_json([{"measurement": payload["measurement"],
                            "violations": payload["violations"]}
                           for payload in payloads])


class TestCampaignRuns:
    def test_invariants_hold_on_the_fast_slice(self):
        result = _campaign().run()
        assert result.cells == 3
        assert result.all_invariants_hold
        assert result.violation_count == 0
        assert result.events_processed > 0

    def test_same_seed_is_byte_identical(self):
        assert (_result_payloads(_campaign().run())
                == _result_payloads(_campaign().run()))

    def test_jobs_do_not_change_the_result(self):
        single = _campaign().run()
        parallel = _campaign(jobs=2).run()
        assert _result_payloads(single) == _result_payloads(parallel)

    def test_table_lists_the_tightest_cells(self):
        result = _campaign().run()
        table = result.to_table()
        assert "Tightest fuzzed cells" in table
        assert "fuzz-1-0000" in table
        assert "### Tightest fuzzed cells" in result.to_markdown()

    def test_write_csv_is_deterministic(self, tmp_path):
        result = _campaign().run()
        result.write_csv(tmp_path / "a.csv")
        result.write_csv(tmp_path / "b.csv")
        first = (tmp_path / "a.csv").read_bytes()
        assert first == (tmp_path / "b.csv").read_bytes()
        header = first.decode().splitlines()[0]
        assert "tightness" in header and "stable" in header

    def test_configuration_errors(self):
        with pytest.raises(ConfigurationError):
            FuzzCampaign(count=0)
        with pytest.raises(ConfigurationError):
            FuzzCampaign(count=1, jobs=0)
        with pytest.raises(ConfigurationError):
            FuzzCampaign(count=1, duration=0.0)
        with pytest.raises(ConfigurationError):
            FuzzCampaign(count=1, tightness_threshold=0.0)
        with pytest.raises(ConfigurationError):
            FuzzCampaign(count=1, seed=-2)


class TestStoreResume:
    def test_resume_is_byte_identical_to_the_cold_run(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cold = _campaign(store=store).run()
        assert cold.resumed == 0
        warm = _campaign(store=ResultStore(tmp_path / "store"),
                         resume=True).run()
        assert warm.resumed == warm.cells == cold.cells
        assert all(outcome.resumed for outcome in warm.outcomes)
        assert _result_payloads(warm) == _result_payloads(cold)

    def test_interrupted_campaign_picks_up_where_it_stopped(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        _campaign(count=2, store=store).run()
        # A longer campaign over the same stream reuses the finished
        # prefix and computes only the new cells.
        longer = _campaign(count=4, store=ResultStore(tmp_path / "store"),
                           resume=True).run()
        assert longer.resumed == 2
        assert longer.cells == 4
        assert (_result_payloads(longer)
                == _result_payloads(_campaign(count=4).run()))

    def test_without_resume_the_store_is_write_only(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        _campaign(store=store).run()
        rerun_store = ResultStore(tmp_path / "store")
        rerun = _campaign(store=rerun_store).run()
        assert rerun.resumed == 0
        assert rerun_store.stats.hits == 0


class TestOutcomePayloads:
    def test_round_trip_is_identity(self):
        outcome = _campaign(count=1).run().outcomes[0]
        payload = _outcome_to_payload(outcome)
        rebuilt = _outcome_from_payload(outcome.cell, payload)
        assert canonical_json(_outcome_to_payload(rebuilt)) \
            == canonical_json(payload)
        assert rebuilt.resumed

    def test_bound_row_tightness_handles_non_finite_bounds(self):
        finite = FuzzBoundRow(policy="fcfs", priority=PriorityClass.URGENT,
                              analytic_bound=0.004, worst_simulated=0.002,
                              mean_simulated=0.001, samples=5)
        assert finite.tightness == pytest.approx(0.5)
        assert finite.bound_holds
        unstable = dataclasses.replace(finite,
                                       analytic_bound=float("inf"))
        assert math.isnan(unstable.tightness)
        assert unstable.bound_holds  # inf dominates everything

    def test_result_max_tightness_sentinel(self):
        assert math.isnan(FuzzResult(outcomes=[]).max_tightness)
        assert not FuzzResult(outcomes=[]).all_invariants_hold


class TestInterestingAndPersistence:
    def _near_tight(self, threshold=0.0):
        result = _campaign().run()
        result.tightness_threshold = threshold
        return result

    def test_zero_threshold_marks_every_holding_cell_interesting(self):
        result = self._near_tight()
        interesting = result.interesting()
        assert len(interesting) == result.cells
        ratios = [outcome.max_tightness for outcome in interesting]
        assert ratios == sorted(ratios, reverse=True)

    def test_high_threshold_marks_none(self):
        result = self._near_tight(threshold=2.0)
        assert result.interesting() == []

    def test_persist_writes_minimized_content_addressed_entries(
            self, tmp_path):
        result = self._near_tight()
        update = persist_interesting(result, generator_seed=1,
                                     directory=tmp_path, limit=2)
        assert len(update.added) <= 2
        assert update.added
        for name in update.added:
            assert name.startswith("near-tight-")
            assert (tmp_path / name).is_file()
        assert str(tmp_path) in update.describe()

    def test_persist_is_idempotent(self, tmp_path):
        result = self._near_tight()
        first = persist_interesting(result, generator_seed=1,
                                    directory=tmp_path, limit=2)
        second = persist_interesting(result, generator_seed=1,
                                     directory=tmp_path, limit=2)
        assert second.added == [] and second.updated == []
        assert sorted(second.unchanged) == sorted(first.added)

    def test_empty_result_touches_nothing(self, tmp_path):
        update = persist_interesting(
            self._near_tight(threshold=2.0), generator_seed=1,
            directory=tmp_path)
        assert update.total == 0
        assert not (tmp_path / "anything").exists()
        assert list(tmp_path.iterdir()) == []


class TestMinimize:
    def _scenario(self) -> Scenario:
        return Scenario(
            name="shrink-me", description="a deliberately baroque scenario",
            workload=WorkloadSpec(station_count=8, seed=3, size_factor=2.0,
                                  replication=2),
            topology=TopologySpec(kind="tree", leaf_count=3),
            capacity=units.mbps(10), technology_delay=units.us(16),
            policies=("fcfs", "strict-priority"))

    def test_always_true_predicate_shrinks_to_the_simplest_form(self):
        minimized, outcome = minimize_scenario(
            self._scenario(), lambda outcome: True, duration=HORIZON)
        assert minimized.workload.replication == 1
        assert minimized.workload.size_factor == 1.0
        assert minimized.workload.station_count == 4
        assert minimized.topology.kind == "single-switch-star"
        assert len(minimized.policies) == 1
        assert outcome.cell.scenario == minimized

    def test_predicate_failures_keep_the_original(self):
        scenario = self._scenario()
        fussy = (lambda outcome:
                 outcome.cell.scenario.workload.replication == 2)
        minimized, _ = minimize_scenario(scenario, fussy, duration=HORIZON)
        assert minimized.workload.replication == 2

    def test_unsatisfied_input_is_an_error(self):
        with pytest.raises(ValueError):
            minimize_scenario(self._scenario(), lambda outcome: False,
                              duration=HORIZON)


class TestEvaluateScenario:
    def test_overloaded_scenario_is_trivially_sound(self):
        # 1 Mbps under a heavy replicated workload overloads the link:
        # the analysis must report inf bounds (not crash) and the
        # invariants must still hold.
        scenario = Scenario(
            name="overloaded", description="deliberate overload",
            workload=WorkloadSpec(station_count=16, seed=0, size_factor=3.0,
                                  replication=3),
            topology=TopologySpec(),
            capacity=units.mbps(1), technology_delay=units.us(16),
            policies=("fcfs",))
        outcome = evaluate_scenario(scenario, duration=HORIZON)
        assert outcome.holds
        assert all(math.isinf(row.analytic_bound)
                   for row in outcome.bound_rows)
        assert math.isnan(outcome.max_tightness)
        assert any(not row.stable for row in outcome.campaign_rows)

    def test_cells_match_the_generator_stream(self):
        campaign = _campaign(count=2)
        cells = campaign.cells()
        assert [cell.index for cell in cells] == [0, 1]
        generator = ScenarioGenerator(1, FAST)
        assert [cell.scenario for cell in cells] \
            == [generator.scenario(0), generator.scenario(1)]
        assert all(isinstance(cell, FuzzCell) for cell in cells)

    def test_outcome_exposes_the_verdicts(self):
        outcome = evaluate_scenario(ScenarioGenerator(1, FAST).scenario(0),
                                    duration=HORIZON)
        assert isinstance(outcome, FuzzOutcome)
        assert outcome.holds
        assert outcome.bound_rows
        assert math.isfinite(outcome.max_tightness)


#: A fast multi-hop slice: small graph fabrics only.
FAST_GRAPH = GeneratorConfig(
    station_counts=(4, 5), replications=(1,),
    topology_kinds=("graph",), capacities_mbps=(10.0,),
    size_factors=(0.5, 1.0),
    graph_families=("diamond", "ring", "random"),
    graph_switch_counts=(3, 4), graph_seeds=(0, 1),
    graph_extra_links=(0, 1))


class TestMultiHopCells:
    def _graph_campaign(self, **overrides) -> FuzzCampaign:
        options = dict(count=3, seed=2, config=FAST_GRAPH,
                       duration=HORIZON)
        options.update(overrides)
        return FuzzCampaign(**options)

    def test_graph_cells_generate_and_hold(self):
        result = self._graph_campaign().run()
        assert result.cells == 3
        assert result.all_invariants_hold
        for outcome in result.outcomes:
            assert outcome.cell.scenario.topology.kind == "graph"
            assert outcome.bound_rows, "per-class end-to-end rows expected"

    def test_graph_cells_carry_per_port_backlog_rows(self):
        result = self._graph_campaign(count=2).run()
        for outcome in result.outcomes:
            assert outcome.port_rows, "graph cells must check every port"
            policies = {row.policy for row in outcome.port_rows}
            assert policies == set(outcome.cell.scenario.policies)
            for row in outcome.port_rows:
                assert isinstance(row, FuzzPortRow)
                assert row.bound_holds

    def test_legacy_cells_have_no_port_rows(self):
        result = _campaign(count=1).run()
        assert result.outcomes[0].port_rows == ()

    def test_port_payload_round_trip(self):
        outcome = self._graph_campaign(count=1).run().outcomes[0]
        payload = _outcome_to_payload(outcome)
        assert payload["measurement"]["ports"], "ports must be serialized"
        rebuilt = _outcome_from_payload(outcome.cell, payload)
        assert rebuilt.port_rows == outcome.port_rows
        assert canonical_json(_outcome_to_payload(rebuilt)) \
            == canonical_json(payload)

    def test_graph_store_resume_is_byte_identical(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cold = self._graph_campaign(store=store).run()
        warm = self._graph_campaign(store=ResultStore(tmp_path / "store"),
                                    resume=True).run()
        assert warm.resumed == warm.cells == cold.cells
        assert _result_payloads(warm) == _result_payloads(cold)

    def test_backlog_violation_is_reported(self):
        bad = FuzzPortRow(policy="fcfs", node="sw-a", toward="sw-b",
                          backlog_bound=1_000.0, observed_bits=2_000.0)
        assert not bad.bound_holds
        violations = _invariant_violations([], [], [bad])
        assert len(violations) == 1
        assert "backlog" in violations[0]
        assert "sw-a->sw-b" in violations[0]
        good = dataclasses.replace(bad, observed_bits=500.0)
        assert _invariant_violations([], [], [good]) == []

    def test_minimized_graph_witness_keeps_its_shape(self):
        scenario = ScenarioGenerator(2, FAST_GRAPH).scenario(0)
        assert scenario.topology.kind == "graph"
        keeps_kind = (lambda outcome:
                      outcome.cell.scenario.topology.kind == "graph")
        minimized, _ = minimize_scenario(scenario, keeps_kind,
                                         duration=HORIZON)
        assert minimized.topology.kind == "graph"
        # The graph-specific shrinks still fire: the witness collapses
        # toward the canonical diamond with no extra links.
        assert minimized.topology.graph_family == "diamond"
        assert minimized.topology.graph_extra_links == 0
