"""Replay of the committed regression corpus.

Every JSON spec under ``tests/fuzz/corpus/`` is an edge case a fuzz
campaign found interesting (a violation — should never exist — or a
near-tight bound), minimized and recorded with its complete deterministic
measurement.  Replaying an entry re-runs the live analysis + simulation
paths from the spec alone and asserts the recorded values still hold
byte-identically — no store, no network, no generator.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.fuzz import load_entries, scenario_to_spec, verify_entry
from repro.fuzz.corpus import DEFAULT_CORPUS_DIR, _entry_from_payload

ENTRIES = load_entries()


def _entry_ids():
    return [entry.filename for entry in ENTRIES]


class TestCorpusShape:
    def test_the_committed_corpus_has_at_least_five_entries(self):
        assert DEFAULT_CORPUS_DIR.is_dir()
        assert len(ENTRIES) >= 5

    def test_filenames_are_content_addressed(self):
        for path in sorted(DEFAULT_CORPUS_DIR.glob("*.json")):
            payload = json.loads(path.read_text(encoding="utf-8"))
            entry = _entry_from_payload(payload)
            assert path.name == entry.filename
            assert entry.reason in ("violation", "near-tight")

    def test_entries_carry_generator_provenance(self):
        for entry in ENTRIES:
            assert entry.generator_seed >= 0
            assert entry.generator_index >= 0
            assert entry.scenario.name == f"corpus-{entry.digest[:12]}"
            assert "corpus" in entry.scenario.tags

    def test_recorded_payload_is_complete(self):
        for entry in ENTRIES:
            assert set(entry.recorded) == {"measurement", "violations",
                                           "max_tightness"}
            measurement = entry.recorded["measurement"]
            assert measurement["campaign"], entry.filename
            assert measurement["rows"], entry.filename

    def test_the_corpus_covers_multi_hop_graph_topologies(self):
        """At least four minimized multi-hop witnesses are committed.

        Graph cells exercise the concatenated per-hop bound path, so the
        regression corpus must pin it the same way it pins the legacy
        single-switch cells.
        """
        graph_entries = [entry for entry in ENTRIES
                         if entry.scenario.topology.kind == "graph"]
        assert len(graph_entries) >= 4
        families = {entry.scenario.topology.graph_family
                    for entry in graph_entries}
        assert len(families) >= 2, "multiple graph families expected"
        for entry in graph_entries:
            assert entry.recorded["measurement"]["ports"], entry.filename

    def test_unknown_format_version_is_rejected(self):
        sample = json.loads(
            (DEFAULT_CORPUS_DIR / _entry_ids()[0]).read_text())
        sample["format"] = 999
        with pytest.raises(ConfigurationError):
            _entry_from_payload(sample)


class TestCorpusReplay:
    @pytest.mark.parametrize("entry", ENTRIES, ids=_entry_ids())
    def test_entry_replays_byte_identically(self, entry, monkeypatch):
        # Replays must never read the result store; point the env at a
        # poisoned path so any accidental store access fails loudly.
        monkeypatch.setenv("REPRO_STORE_DIR", "/nonexistent/corpus-store")
        assert verify_entry(entry) == []

    def test_committed_specs_round_trip_through_the_writer(self):
        for entry in ENTRIES:
            committed = json.loads(
                (DEFAULT_CORPUS_DIR / entry.filename).read_text())
            assert committed["scenario"] == scenario_to_spec(entry.scenario)
