"""Delay, backlog and output bounds."""

import math

import pytest

from repro import units
from repro.core.netcalc import (
    AggregateArrivalCurve,
    ConstantRateServiceCurve,
    RateLatencyServiceCurve,
    StairArrivalCurve,
    TokenBucketArrivalCurve,
    backlog_bound,
    delay_bound,
    horizontal_deviation,
    output_arrival_curve,
    vertical_deviation,
)
from repro.errors import UnstableSystemError


class TestDelayBound:
    def test_token_bucket_vs_constant_rate_is_b_over_c(self):
        alpha = TokenBucketArrivalCurve(bucket=10_000, token_rate=1e5)
        beta = ConstantRateServiceCurve(units.mbps(10))
        assert delay_bound(alpha, beta) == pytest.approx(10_000 / 1e7)

    def test_token_bucket_vs_rate_latency_adds_the_latency(self):
        alpha = TokenBucketArrivalCurve(bucket=10_000, token_rate=1e5)
        beta = RateLatencyServiceCurve(rate=units.mbps(10),
                                       delay=units.us(16))
        assert delay_bound(alpha, beta) == pytest.approx(
            units.us(16) + 10_000 / 1e7)

    def test_aggregate_uses_total_burst(self):
        aggregate = AggregateArrivalCurve([
            TokenBucketArrivalCurve(5_000, 1e5),
            TokenBucketArrivalCurve(5_000, 1e5)])
        beta = ConstantRateServiceCurve(units.mbps(10))
        assert delay_bound(aggregate, beta) == pytest.approx(10_000 / 1e7)

    def test_unstable_raises_in_strict_mode(self):
        alpha = TokenBucketArrivalCurve(bucket=100, token_rate=2e7)
        beta = ConstantRateServiceCurve(units.mbps(10))
        with pytest.raises(UnstableSystemError):
            delay_bound(alpha, beta)

    def test_unstable_returns_infinity_when_not_strict(self):
        alpha = TokenBucketArrivalCurve(bucket=100, token_rate=2e7)
        beta = ConstantRateServiceCurve(units.mbps(10))
        assert math.isinf(delay_bound(alpha, beta, strict=False))

    def test_stair_curve_bound_uses_numeric_deviation(self):
        alpha = StairArrivalCurve(message_size=1000, period=0.01)
        beta = ConstantRateServiceCurve(units.mbps(1))
        assert delay_bound(alpha, beta) == pytest.approx(1000 / 1e6, rel=0.05)

    def test_stair_curve_bound_accounts_for_jitter(self):
        # b = 9000 bits, T = 10 ms, j = 5 ms, R = 1 Mbps.  The worst
        # deviation is attained just after the first step (t = T - j), where
        # two messages may have arrived: d = 2b/R - (T - j) = 13 ms, larger
        # than the jitter-free bound b/R = 9 ms.
        alpha = StairArrivalCurve(message_size=9000, period=0.01,
                                  jitter=0.005)
        beta = ConstantRateServiceCurve(units.mbps(1))
        bound = delay_bound(alpha, beta)
        assert bound == pytest.approx(0.013, rel=0.05)
        assert bound > 9000 / 1e6

    def test_generic_curve_falls_back_to_numeric(self):
        # A curve without 'rate'/'burst' attributes exercises the numeric
        # horizontal deviation path.
        def alpha(t):
            return 1000.0 + 1e5 * t

        beta = ConstantRateServiceCurve(units.mbps(1))
        bound = delay_bound(alpha, beta, horizon=0.1)
        assert bound == pytest.approx(1000 / 1e6, rel=0.05)


class TestBacklogBound:
    def test_token_bucket_vs_constant_rate_is_the_burst(self):
        alpha = TokenBucketArrivalCurve(bucket=10_000, token_rate=1e5)
        beta = ConstantRateServiceCurve(units.mbps(10))
        assert backlog_bound(alpha, beta) == pytest.approx(10_000)

    def test_token_bucket_vs_rate_latency_adds_rate_times_latency(self):
        alpha = TokenBucketArrivalCurve(bucket=10_000, token_rate=1e5)
        beta = RateLatencyServiceCurve(rate=units.mbps(10), delay=0.001)
        assert backlog_bound(alpha, beta) == pytest.approx(10_000 + 1e5 * 0.001)

    def test_unstable_raises(self):
        alpha = TokenBucketArrivalCurve(bucket=100, token_rate=2e7)
        beta = ConstantRateServiceCurve(units.mbps(10))
        with pytest.raises(UnstableSystemError):
            backlog_bound(alpha, beta)

    def test_unstable_not_strict_is_infinite(self):
        alpha = TokenBucketArrivalCurve(bucket=100, token_rate=2e7)
        beta = ConstantRateServiceCurve(units.mbps(10))
        assert math.isinf(backlog_bound(alpha, beta, strict=False))


class TestNumericDeviations:
    def test_horizontal_deviation_matches_closed_form(self):
        alpha = TokenBucketArrivalCurve(bucket=10_000, token_rate=1e5)
        beta = RateLatencyServiceCurve(rate=units.mbps(10), delay=0.0005)
        numeric = horizontal_deviation(alpha, beta)
        assert numeric == pytest.approx(0.0005 + 10_000 / 1e7, rel=0.02)

    def test_vertical_deviation_matches_closed_form(self):
        alpha = TokenBucketArrivalCurve(bucket=10_000, token_rate=1e5)
        beta = RateLatencyServiceCurve(rate=units.mbps(10), delay=0.001)
        numeric = vertical_deviation(alpha, beta)
        assert numeric == pytest.approx(10_000 + 1e5 * 0.001, rel=0.02)


class TestOutputArrivalCurve:
    def test_burst_grows_by_rate_times_latency(self):
        alpha = TokenBucketArrivalCurve(bucket=1000, token_rate=1e5)
        beta = RateLatencyServiceCurve(rate=1e6, delay=0.002)
        output = output_arrival_curve(alpha, beta)
        assert output.bucket == pytest.approx(1000 + 1e5 * 0.002)
        assert output.token_rate == pytest.approx(1e5)

    def test_constant_rate_server_does_not_grow_the_burst(self):
        alpha = TokenBucketArrivalCurve(bucket=1000, token_rate=1e5)
        beta = ConstantRateServiceCurve(1e6)
        output = output_arrival_curve(alpha, beta)
        assert output.bucket == pytest.approx(1000)

    def test_unstable_raises(self):
        alpha = TokenBucketArrivalCurve(bucket=1000, token_rate=2e6)
        beta = RateLatencyServiceCurve(rate=1e6, delay=0.001)
        with pytest.raises(UnstableSystemError):
            output_arrival_curve(alpha, beta)

    def test_unsupported_service_type_rejected(self):
        alpha = TokenBucketArrivalCurve(bucket=1000, token_rate=1e5)
        with pytest.raises(TypeError):
            output_arrival_curve(alpha, lambda t: t)
