"""Arrival curves."""

import pytest

from repro import Message, units
from repro.core.netcalc import (
    AggregateArrivalCurve,
    StairArrivalCurve,
    TokenBucketArrivalCurve,
)
from repro.errors import CurveDomainError, EmptyAggregateError


class TestTokenBucket:
    def test_value_at_zero_is_the_burst(self):
        curve = TokenBucketArrivalCurve(bucket=100, token_rate=1000)
        assert curve(0.0) == 100

    def test_affine_growth(self):
        curve = TokenBucketArrivalCurve(bucket=100, token_rate=1000)
        assert curve(0.5) == pytest.approx(600)

    def test_rate_and_burst_properties(self):
        curve = TokenBucketArrivalCurve(bucket=128, token_rate=6400)
        assert curve.rate == 6400
        assert curve.burst == 128

    def test_negative_interval_rejected(self):
        with pytest.raises(CurveDomainError):
            TokenBucketArrivalCurve(100, 1000)(-1.0)

    def test_negative_parameters_rejected(self):
        with pytest.raises(CurveDomainError):
            TokenBucketArrivalCurve(-1, 10)
        with pytest.raises(CurveDomainError):
            TokenBucketArrivalCurve(1, -10)

    def test_sum_of_token_buckets(self):
        total = TokenBucketArrivalCurve(100, 1000) + \
            TokenBucketArrivalCurve(50, 500)
        assert total.bucket == 150
        assert total.token_rate == 1500

    def test_from_message_matches_paper_shaper(self):
        message = Message.periodic("nav", period=units.ms(20),
                                   size=units.words1553(8),
                                   source="a", destination="b")
        curve = TokenBucketArrivalCurve.from_message(message)
        assert curve.burst == message.size
        assert curve.rate == pytest.approx(message.size / message.period)

    def test_monotone_non_decreasing(self):
        curve = TokenBucketArrivalCurve(10, 100)
        values = [curve(t / 10) for t in range(20)]
        assert values == sorted(values)


class TestStairCurve:
    def test_value_at_zero_is_one_message(self):
        curve = StairArrivalCurve(message_size=100, period=0.01)
        assert curve(0.0) == 100

    def test_stair_steps(self):
        curve = StairArrivalCurve(message_size=100, period=0.01)
        assert curve(0.005) == 100
        assert curve(0.010) == 200
        assert curve(0.0199) == 200
        assert curve(0.025) == 300

    def test_rate(self):
        curve = StairArrivalCurve(message_size=100, period=0.01)
        assert curve.rate == pytest.approx(10_000)

    def test_jitter_shifts_the_curve(self):
        plain = StairArrivalCurve(message_size=100, period=0.01)
        jittery = StairArrivalCurve(message_size=100, period=0.01,
                                    jitter=0.005)
        assert jittery(0.006) >= plain(0.006)
        assert jittery(0.006) == 200

    def test_token_bucket_hull_dominates(self):
        stair = StairArrivalCurve(message_size=100, period=0.01, jitter=0.002)
        hull = stair.to_token_bucket()
        for t in [0.0, 0.001, 0.009, 0.01, 0.05, 0.3]:
            assert hull(t) >= stair(t) - 1e-9

    def test_invalid_parameters_rejected(self):
        with pytest.raises(CurveDomainError):
            StairArrivalCurve(message_size=0, period=0.01)
        with pytest.raises(CurveDomainError):
            StairArrivalCurve(message_size=10, period=0.0)
        with pytest.raises(CurveDomainError):
            StairArrivalCurve(message_size=10, period=0.01, jitter=-1)


class TestAggregate:
    def test_sum_of_components(self):
        aggregate = AggregateArrivalCurve([
            TokenBucketArrivalCurve(100, 1000),
            TokenBucketArrivalCurve(50, 500),
            StairArrivalCurve(message_size=10, period=0.01),
        ])
        assert aggregate(0.0) == pytest.approx(160)
        assert aggregate.burst == pytest.approx(160)
        assert aggregate.rate == pytest.approx(1000 + 500 + 1000)

    def test_len_and_components(self):
        aggregate = AggregateArrivalCurve(
            [TokenBucketArrivalCurve(1, 1), TokenBucketArrivalCurve(2, 2)])
        assert len(aggregate) == 2
        assert len(aggregate.components) == 2

    def test_empty_aggregate_rejected(self):
        with pytest.raises(EmptyAggregateError):
            AggregateArrivalCurve([])
