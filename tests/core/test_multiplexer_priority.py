"""The paper's strict-priority (802.1p) multiplexer bound D_p."""

import pytest

from repro import (
    FcfsMultiplexerAnalysis,
    Message,
    PriorityClass,
    StrictPriorityMultiplexerAnalysis,
    units,
)
from repro.core.multiplexer import priority_of
from repro.errors import EmptyAggregateError, UnstableSystemError


def make_messages():
    """One message per class with easily checkable parameters."""
    return [
        Message.sporadic("urgent", min_interarrival=units.ms(20), size=100,
                         source="a", destination="z", deadline=units.ms(3)),
        Message.periodic("periodic", period=units.ms(20), size=1000,
                         source="b", destination="z"),
        Message.sporadic("sporadic", min_interarrival=units.ms(40), size=2000,
                         source="c", destination="z", deadline=units.ms(40)),
        Message.sporadic("background", min_interarrival=units.ms(160),
                         size=4000, source="d", destination="z"),
    ]


CAPACITY = units.mbps(10)
TECHNO = units.us(16)


class TestPaperFormula:
    def test_priority_0_bound(self):
        # D_0 = (b_urgent + max lower burst) / C + t_techno
        analysis = StrictPriorityMultiplexerAnalysis(CAPACITY, TECHNO)
        bound = analysis.bound_for_class(make_messages(), PriorityClass.URGENT)
        assert bound.delay == pytest.approx((100 + 4000) / CAPACITY + TECHNO)

    def test_priority_1_bound(self):
        # D_1 = (b_urgent + b_periodic + max(b_sporadic, b_background))
        #       / (C - r_urgent) + t_techno
        messages = make_messages()
        analysis = StrictPriorityMultiplexerAnalysis(CAPACITY, TECHNO)
        bound = analysis.bound_for_class(messages, PriorityClass.PERIODIC)
        urgent_rate = 100 / units.ms(20)
        expected = (100 + 1000 + 4000) / (CAPACITY - urgent_rate) + TECHNO
        assert bound.delay == pytest.approx(expected)

    def test_priority_2_bound(self):
        messages = make_messages()
        analysis = StrictPriorityMultiplexerAnalysis(CAPACITY, TECHNO)
        bound = analysis.bound_for_class(messages, PriorityClass.SPORADIC)
        higher_rate = 100 / units.ms(20) + 1000 / units.ms(20)
        expected = (100 + 1000 + 2000 + 4000) / (CAPACITY - higher_rate) + TECHNO
        assert bound.delay == pytest.approx(expected)

    def test_priority_3_has_no_blocking_term(self):
        messages = make_messages()
        analysis = StrictPriorityMultiplexerAnalysis(CAPACITY, TECHNO)
        bound = analysis.bound_for_class(messages, PriorityClass.BACKGROUND)
        assert bound.blocking_term == 0.0

    def test_bounds_are_monotone_in_priority(self):
        """Lower priority classes never get a smaller bound."""
        analysis = StrictPriorityMultiplexerAnalysis(CAPACITY, TECHNO)
        bounds = analysis.class_bounds(make_messages())
        delays = [bounds[cls].delay for cls in sorted(bounds)]
        assert delays == sorted(delays)

    def test_highest_priority_beats_fcfs(self):
        """The urgent class improves over the FCFS bound (paper's point)."""
        messages = make_messages()
        priority = StrictPriorityMultiplexerAnalysis(CAPACITY, TECHNO)
        fcfs = FcfsMultiplexerAnalysis(CAPACITY, TECHNO)
        assert priority.bound_for_class(
            messages, PriorityClass.URGENT).delay < fcfs.bound(messages).delay

    def test_preemptive_variant_drops_the_blocking_term(self):
        messages = make_messages()
        non_preemptive = StrictPriorityMultiplexerAnalysis(CAPACITY, TECHNO)
        preemptive = StrictPriorityMultiplexerAnalysis(CAPACITY, TECHNO,
                                                       preemptive=True)
        np_bound = non_preemptive.bound_for_class(messages,
                                                  PriorityClass.URGENT)
        p_bound = preemptive.bound_for_class(messages, PriorityClass.URGENT)
        assert np_bound.delay - p_bound.delay == pytest.approx(4000 / CAPACITY)

    def test_single_class_priority_equals_fcfs(self):
        """With every flow in the same class, D_p degenerates to the FCFS D."""
        messages = [
            Message.periodic(f"p{i}", period=units.ms(40), size=1000,
                             source="a", destination="z")
            for i in range(4)
        ]
        priority = StrictPriorityMultiplexerAnalysis(CAPACITY, TECHNO)
        fcfs = FcfsMultiplexerAnalysis(CAPACITY, TECHNO)
        assert priority.bound_for_class(
            messages, PriorityClass.PERIODIC).delay == pytest.approx(
            fcfs.bound(messages).delay)


class TestGuards:
    def test_missing_class_rejected(self):
        analysis = StrictPriorityMultiplexerAnalysis(CAPACITY)
        only_periodic = [Message.periodic("p", period=units.ms(20), size=100,
                                          source="a", destination="z")]
        with pytest.raises(EmptyAggregateError):
            analysis.bound_for_class(only_periodic, PriorityClass.URGENT)

    def test_empty_set_rejected(self):
        with pytest.raises(EmptyAggregateError):
            StrictPriorityMultiplexerAnalysis(CAPACITY).class_bounds([])

    def test_saturated_higher_classes_raise(self):
        messages = [
            Message.sporadic("urgent", min_interarrival=units.ms(1),
                             size=20_000, source="a", destination="z",
                             deadline=units.ms(3)),
            Message.periodic("periodic", period=units.ms(20), size=100,
                             source="b", destination="z"),
        ]
        analysis = StrictPriorityMultiplexerAnalysis(CAPACITY)
        with pytest.raises(UnstableSystemError):
            analysis.bound_for_class(messages, PriorityClass.PERIODIC)

    def test_overloaded_own_class_raises_in_strict_mode(self):
        messages = [
            Message.periodic("heavy", period=units.ms(1), size=20_000,
                             source="a", destination="z"),
        ]
        analysis = StrictPriorityMultiplexerAnalysis(CAPACITY)
        with pytest.raises(UnstableSystemError):
            analysis.bound_for_class(messages, PriorityClass.PERIODIC)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            StrictPriorityMultiplexerAnalysis(capacity=-1)


class TestResidualServiceCurve:
    def test_residual_curve_reproduces_the_bound(self):
        from repro.core.netcalc import TokenBucketArrivalCurve, delay_bound
        messages = make_messages()
        analysis = StrictPriorityMultiplexerAnalysis(CAPACITY, TECHNO)
        for cls in PriorityClass:
            grouped = analysis.group_by_class(messages)
            if not grouped[cls]:
                continue
            own = [m for m in messages
                   if priority_of(m).value <= cls.value]
            aggregate = TokenBucketArrivalCurve(
                bucket=sum(m.burst for m in own),
                token_rate=sum(m.rate for m in own))
            residual = analysis.residual_service_curve(messages, cls)
            assert delay_bound(aggregate, residual) == pytest.approx(
                analysis.bound_for_class(messages, cls).delay)

    def test_residual_rate_excludes_higher_classes(self):
        messages = make_messages()
        analysis = StrictPriorityMultiplexerAnalysis(CAPACITY, TECHNO)
        residual = analysis.residual_service_curve(messages,
                                                   PriorityClass.SPORADIC)
        higher_rate = 100 / units.ms(20) + 1000 / units.ms(20)
        assert residual.rate == pytest.approx(CAPACITY - higher_rate)


class TestPriorityOf:
    def test_message_uses_paper_policy(self):
        message = make_messages()[0]
        assert priority_of(message) is PriorityClass.URGENT

    def test_flow_uses_explicit_priority(self):
        from repro import Flow
        flow = Flow(make_messages()[1], priority=PriorityClass.BACKGROUND)
        assert priority_of(flow) is PriorityClass.BACKGROUND

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            priority_of(object())
