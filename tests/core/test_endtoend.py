"""End-to-end analysis over a routed topology."""

import pytest

from repro import EndToEndAnalysis, Flow, Message, units
from repro.flows.priorities import PriorityClass
from repro.topology import dual_switch_topology, single_switch_star


def star_messages():
    return [
        Message.periodic("nav", period=units.ms(20), size=1000,
                         source="station-00", destination="station-01"),
        Message.sporadic("alarm", min_interarrival=units.ms(20), size=200,
                         source="station-02", destination="station-01",
                         deadline=units.ms(3)),
        Message.sporadic("bulk", min_interarrival=units.ms(160), size=8000,
                         source="station-03", destination="station-01"),
    ]


class TestStarTopology:
    def test_every_flow_gets_a_two_hop_bound(self):
        network = single_switch_star(4, capacity=units.mbps(10))
        analysis = EndToEndAnalysis(network, policy="strict-priority")
        result = analysis.analyze(star_messages())
        assert len(result) == 3
        for bound in result:
            assert len(bound.hops) == 2
            assert bound.hops[0].node.startswith("station-")
            assert bound.hops[1].node == "switch-0"

    def test_total_is_the_sum_of_hops(self):
        network = single_switch_star(4)
        result = EndToEndAnalysis(network, policy="fcfs").analyze(
            star_messages())
        for bound in result:
            assert bound.total_delay == pytest.approx(
                sum(hop.total for hop in bound.hops))

    def test_switch_hop_includes_technology_delay(self):
        network = single_switch_star(4, technology_delay=units.us(100))
        result = EndToEndAnalysis(network, policy="fcfs").analyze(
            star_messages())
        bound = result.bound_for("nav")
        assert bound.hops[1].multiplexer_bound.technology_delay == \
            pytest.approx(units.us(100))
        assert bound.hops[0].multiplexer_bound.technology_delay == 0.0

    def test_priority_improves_the_urgent_flow(self):
        network = single_switch_star(4)
        fcfs = EndToEndAnalysis(network, policy="fcfs").analyze(star_messages())
        priority = EndToEndAnalysis(network, policy="strict-priority").analyze(
            star_messages())
        assert priority.bound_for("alarm").total_delay < \
            fcfs.bound_for("alarm").total_delay

    def test_deadline_checking(self):
        network = single_switch_star(4)
        result = EndToEndAnalysis(network, policy="strict-priority").analyze(
            star_messages())
        alarm = result.bound_for("alarm")
        assert alarm.deadline == pytest.approx(units.ms(3))
        assert alarm.meets_deadline
        assert alarm.margin == pytest.approx(
            units.ms(3) - alarm.total_delay)

    def test_flow_without_deadline_always_meets_it(self):
        network = single_switch_star(4)
        result = EndToEndAnalysis(network, policy="fcfs").analyze(
            star_messages())
        bulk = result.bound_for("bulk")
        assert bulk.deadline is None
        assert bulk.meets_deadline
        assert bulk.margin is None


class TestResultContainer:
    def test_worst_per_class(self):
        network = single_switch_star(4)
        result = EndToEndAnalysis(network, policy="strict-priority").analyze(
            star_messages())
        worst = result.worst_per_class()
        assert set(worst) == {PriorityClass.URGENT, PriorityClass.PERIODIC,
                              PriorityClass.BACKGROUND}
        assert worst[PriorityClass.URGENT].name == "alarm"

    def test_unknown_flow_lookup_raises(self):
        network = single_switch_star(4)
        result = EndToEndAnalysis(network, policy="fcfs").analyze(
            star_messages())
        with pytest.raises(KeyError):
            result.bound_for("missing")

    def test_violations_and_all_deadlines_met(self):
        network = single_switch_star(4)
        result = EndToEndAnalysis(network, policy="strict-priority").analyze(
            star_messages())
        assert result.all_deadlines_met
        assert result.violations() == []

    def test_max_delay(self):
        network = single_switch_star(4)
        result = EndToEndAnalysis(network, policy="fcfs").analyze(
            star_messages())
        assert result.max_delay() == max(b.total_delay for b in result)

    def test_empty_analysis(self):
        network = single_switch_star(4)
        result = EndToEndAnalysis(network, policy="fcfs").analyze([])
        assert len(result) == 0


class TestBurstPropagation:
    def test_propagation_never_reduces_the_bound(self):
        network = dual_switch_topology(stations_per_switch=2)
        messages = [
            Message.periodic("cross", period=units.ms(20), size=2000,
                             source="station-00", destination="station-02"),
            Message.periodic("local", period=units.ms(20), size=2000,
                             source="station-01", destination="station-02"),
        ]
        with_propagation = EndToEndAnalysis(
            network, policy="fcfs", burst_propagation=True).analyze(messages)
        without = EndToEndAnalysis(
            network, policy="fcfs", burst_propagation=False).analyze(messages)
        for flow_name in ("cross", "local"):
            assert with_propagation.bound_for(flow_name).total_delay >= \
                without.bound_for(flow_name).total_delay - 1e-12

    def test_cross_switch_flow_has_three_hops(self):
        network = dual_switch_topology(stations_per_switch=2)
        messages = [Message.periodic("cross", period=units.ms(20), size=2000,
                                     source="station-00",
                                     destination="station-02")]
        result = EndToEndAnalysis(network, policy="fcfs").analyze(messages)
        assert len(result.bound_for("cross").hops) == 3


class TestInputs:
    def test_accepts_already_routed_flows(self):
        network = single_switch_star(4)
        flow = Flow(star_messages()[0]).with_path(
            ["station-00", "switch-0", "station-01"])
        result = EndToEndAnalysis(network, policy="fcfs").analyze([flow])
        assert result.bound_for("nav").hops[0].node == "station-00"

    def test_invalid_policy_rejected(self):
        network = single_switch_star(4)
        with pytest.raises(ValueError):
            EndToEndAnalysis(network, policy="weighted-fair")

    def test_station_technology_delay_is_added(self):
        network = single_switch_star(4)
        plain = EndToEndAnalysis(
            network, policy="fcfs", burst_propagation=False).analyze(
            star_messages())
        padded = EndToEndAnalysis(
            network, policy="fcfs", burst_propagation=False,
            station_technology_delay=units.us(50)).analyze(star_messages())
        assert padded.bound_for("nav").total_delay == pytest.approx(
            plain.bound_for("nav").total_delay + units.us(50))
