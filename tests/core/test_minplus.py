"""Min-plus operations."""

import pytest

from repro.core.netcalc import (
    RateLatencyServiceCurve,
    TokenBucketArrivalCurve,
    convolve_rate_latency,
    min_plus_convolution,
    min_plus_deconvolution,
)


class TestClosedFormConvolution:
    def test_tandem_rate_is_the_minimum(self):
        tandem = convolve_rate_latency(
            RateLatencyServiceCurve(rate=1e7, delay=0.001),
            RateLatencyServiceCurve(rate=5e6, delay=0.002))
        assert tandem.rate == 5e6

    def test_tandem_latency_is_the_sum(self):
        tandem = convolve_rate_latency(
            RateLatencyServiceCurve(rate=1e7, delay=0.001),
            RateLatencyServiceCurve(rate=5e6, delay=0.002))
        assert tandem.delay == pytest.approx(0.003)

    def test_convolution_is_commutative(self):
        a = RateLatencyServiceCurve(rate=1e7, delay=0.001)
        b = RateLatencyServiceCurve(rate=2e6, delay=0.004)
        assert convolve_rate_latency(a, b) == convolve_rate_latency(b, a)


class TestNumericConvolution:
    def test_matches_closed_form_for_rate_latency(self):
        a = RateLatencyServiceCurve(rate=1e6, delay=0.001)
        b = RateLatencyServiceCurve(rate=2e6, delay=0.002)
        closed = convolve_rate_latency(a, b)
        for t in [0.0, 0.001, 0.003, 0.01, 0.05]:
            numeric = min_plus_convolution(a, b, t, samples=4000)
            assert numeric == pytest.approx(closed(t), abs=200)

    def test_convolution_at_zero(self):
        a = RateLatencyServiceCurve(rate=1e6, delay=0.001)
        assert min_plus_convolution(a, a, 0.0) == 0.0

    def test_negative_interval_rejected(self):
        a = RateLatencyServiceCurve(rate=1e6, delay=0.0)
        with pytest.raises(ValueError):
            min_plus_convolution(a, a, -1.0)


class TestNumericDeconvolution:
    def test_token_bucket_through_rate_latency(self):
        # (alpha ⊘ beta)(t) = b + r T + r t for a token bucket through a
        # rate-latency server with r <= R; check at a few points.
        alpha = TokenBucketArrivalCurve(bucket=1000, token_rate=1e5)
        beta = RateLatencyServiceCurve(rate=1e6, delay=0.002)
        for t in [0.0, 0.001, 0.01]:
            expected = 1000 + 1e5 * 0.002 + 1e5 * t
            numeric = min_plus_deconvolution(alpha, beta, t, horizon=0.01,
                                             samples=4000)
            assert numeric == pytest.approx(expected, rel=0.01)

    def test_negative_arguments_rejected(self):
        alpha = TokenBucketArrivalCurve(10, 10)
        beta = RateLatencyServiceCurve(rate=1e6, delay=0.0)
        with pytest.raises(ValueError):
            min_plus_deconvolution(alpha, beta, -1.0, horizon=1.0)
        with pytest.raises(ValueError):
            min_plus_deconvolution(alpha, beta, 1.0, horizon=-1.0)


class TestVectorizedEvaluation:
    """The numeric operators evaluate array-aware curves in one call and
    fall back to a scalar loop for plain callables."""

    def test_array_aware_and_scalar_curves_agree(self):
        curve = RateLatencyServiceCurve(rate=1e6, delay=0.002)

        def scalar_only(t):
            if t < 0:  # array input would raise on the ambiguous truth value
                raise ValueError(t)
            return curve(float(t))

        for t in [0.001, 0.004, 0.02]:
            assert min_plus_convolution(curve, curve, t) == \
                min_plus_convolution(scalar_only, scalar_only, t)
            assert min_plus_deconvolution(curve, curve, t, horizon=0.01) == \
                min_plus_deconvolution(scalar_only, scalar_only, t,
                                       horizon=0.01)

    def test_curves_accept_interval_arrays(self):
        import numpy as np

        grid = np.linspace(0.0, 0.01, 5)
        bucket = TokenBucketArrivalCurve(bucket=1000, token_rate=1e5)
        assert list(bucket(grid)) == [bucket(float(t)) for t in grid]
        service = RateLatencyServiceCurve(rate=1e6, delay=0.002)
        assert list(service(grid)) == [service(float(t)) for t in grid]

    def test_negative_array_entries_rejected(self):
        import numpy as np

        from repro.errors import CurveDomainError

        bucket = TokenBucketArrivalCurve(bucket=1000, token_rate=1e5)
        with pytest.raises(CurveDomainError):
            bucket(np.array([0.0, -1.0]))
