"""Service curves."""

import pytest

from repro import units
from repro.core.netcalc import ConstantRateServiceCurve, RateLatencyServiceCurve
from repro.errors import CurveDomainError


class TestConstantRate:
    def test_linear_service(self):
        curve = ConstantRateServiceCurve(units.mbps(10))
        assert curve(0.001) == pytest.approx(10_000)

    def test_zero_latency(self):
        assert ConstantRateServiceCurve(1e6).latency == 0.0

    def test_service_rate(self):
        assert ConstantRateServiceCurve(1e6).service_rate == 1e6

    def test_invalid_capacity_rejected(self):
        with pytest.raises(CurveDomainError):
            ConstantRateServiceCurve(0)

    def test_negative_interval_rejected(self):
        with pytest.raises(CurveDomainError):
            ConstantRateServiceCurve(1e6)(-0.1)

    def test_with_latency_degrades_to_rate_latency(self):
        curve = ConstantRateServiceCurve(1e6).with_latency(units.us(16))
        assert isinstance(curve, RateLatencyServiceCurve)
        assert curve.latency == pytest.approx(units.us(16))
        assert curve.service_rate == 1e6


class TestRateLatency:
    def test_zero_before_latency(self):
        curve = RateLatencyServiceCurve(rate=1e6, delay=0.001)
        assert curve(0.0005) == 0.0
        assert curve(0.001) == 0.0

    def test_linear_after_latency(self):
        curve = RateLatencyServiceCurve(rate=1e6, delay=0.001)
        assert curve(0.002) == pytest.approx(1000)

    def test_properties(self):
        curve = RateLatencyServiceCurve(rate=2e6, delay=0.003)
        assert curve.service_rate == 2e6
        assert curve.latency == 0.003

    def test_invalid_parameters_rejected(self):
        with pytest.raises(CurveDomainError):
            RateLatencyServiceCurve(rate=0, delay=0.0)
        with pytest.raises(CurveDomainError):
            RateLatencyServiceCurve(rate=1e6, delay=-0.1)

    def test_monotone_non_decreasing(self):
        curve = RateLatencyServiceCurve(rate=1e6, delay=0.001)
        values = [curve(t / 1000) for t in range(10)]
        assert values == sorted(values)
