"""The paper's FCFS multiplexer bound D = sum(b_i)/C + t_techno."""

import pytest

from repro import FcfsMultiplexerAnalysis, Flow, Message, units
from repro.errors import EmptyAggregateError, UnstableSystemError
from repro.flows.priorities import PriorityClass


def make_messages():
    return [
        Message.periodic("m1", period=units.ms(20), size=1000,
                         source="a", destination="z"),
        Message.periodic("m2", period=units.ms(40), size=2000,
                         source="b", destination="z"),
        Message.sporadic("m3", min_interarrival=units.ms(20), size=500,
                         source="c", destination="z", deadline=units.ms(3)),
    ]


class TestPaperFormula:
    def test_bound_is_total_burst_over_capacity_plus_ttechno(self):
        analysis = FcfsMultiplexerAnalysis(capacity=units.mbps(10),
                                           technology_delay=units.us(16))
        bound = analysis.bound(make_messages())
        assert bound.delay == pytest.approx(3500 / 1e7 + units.us(16))

    def test_bound_without_technology_delay(self):
        analysis = FcfsMultiplexerAnalysis(capacity=units.mbps(10))
        assert analysis.bound(make_messages()).delay == pytest.approx(3.5e-4)

    def test_bound_scales_inversely_with_capacity(self):
        slow = FcfsMultiplexerAnalysis(units.mbps(10)).bound(make_messages())
        fast = FcfsMultiplexerAnalysis(units.mbps(100)).bound(make_messages())
        assert slow.delay == pytest.approx(10 * fast.delay)

    def test_bound_is_independent_of_rates(self):
        # The FCFS formula only involves the bursts: two sets with identical
        # bursts but different periods get the same bound.
        analysis = FcfsMultiplexerAnalysis(units.mbps(10))
        slow_messages = [m.with_size(m.size) for m in make_messages()]
        fast_messages = [
            Message.periodic("f1", period=units.ms(160), size=1000,
                             source="a", destination="z"),
            Message.periodic("f2", period=units.ms(160), size=2000,
                             source="b", destination="z"),
            Message.sporadic("f3", min_interarrival=units.ms(160), size=500,
                             source="c", destination="z"),
        ]
        assert analysis.bound(slow_messages).delay == pytest.approx(
            analysis.bound(fast_messages).delay)

    def test_breakdown_fields(self):
        analysis = FcfsMultiplexerAnalysis(units.mbps(10), units.us(16))
        bound = analysis.bound(make_messages())
        assert bound.burst_term == 3500
        assert bound.blocking_term == 0.0
        assert bound.residual_rate == units.mbps(10)
        assert bound.flow_count == 3
        assert bound.priority is None
        assert bound.queuing_delay == pytest.approx(3500 / 1e7)

    def test_accepts_flows_as_well_as_messages(self):
        analysis = FcfsMultiplexerAnalysis(units.mbps(10))
        flows = [Flow(message) for message in make_messages()]
        assert analysis.bound(flows).delay == pytest.approx(3.5e-4)


class TestGuards:
    def test_empty_aggregate_rejected(self):
        with pytest.raises(EmptyAggregateError):
            FcfsMultiplexerAnalysis(units.mbps(10)).bound([])

    def test_overload_raises_in_strict_mode(self):
        heavy = [Message.periodic("h", period=units.ms(1), size=20_000,
                                  source="a", destination="z")]
        with pytest.raises(UnstableSystemError):
            FcfsMultiplexerAnalysis(units.mbps(10)).bound(heavy)

    def test_overload_tolerated_when_not_strict(self):
        heavy = [Message.periodic("h", period=units.ms(1), size=20_000,
                                  source="a", destination="z")]
        bound = FcfsMultiplexerAnalysis(units.mbps(10)).bound(
            heavy, strict=False)
        assert bound.details["unstable"] == 1.0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FcfsMultiplexerAnalysis(capacity=0)

    def test_negative_technology_delay_rejected(self):
        with pytest.raises(ValueError):
            FcfsMultiplexerAnalysis(capacity=1e6, technology_delay=-1e-6)


class TestClassView:
    def test_every_present_class_gets_the_same_bound(self):
        analysis = FcfsMultiplexerAnalysis(units.mbps(10), units.us(16))
        class_bounds = analysis.class_bounds(make_messages())
        assert set(class_bounds) == {PriorityClass.URGENT,
                                     PriorityClass.PERIODIC}
        delays = {bound.delay for bound in class_bounds.values()}
        assert len(delays) == 1


class TestCompositionHelpers:
    def test_aggregate_arrival_curve(self):
        analysis = FcfsMultiplexerAnalysis(units.mbps(10))
        curve = analysis.aggregate_arrival_curve(make_messages())
        assert curve.burst == 3500

    def test_service_curve(self):
        analysis = FcfsMultiplexerAnalysis(units.mbps(10), units.us(16))
        service = analysis.service_curve()
        assert service.rate == units.mbps(10)
        assert service.latency == pytest.approx(units.us(16))

    def test_bound_consistent_with_generic_netcalc(self):
        from repro.core.netcalc import delay_bound
        analysis = FcfsMultiplexerAnalysis(units.mbps(10), units.us(16))
        closed = analysis.bound(make_messages()).delay
        generic = delay_bound(analysis.aggregate_arrival_curve(make_messages()),
                              analysis.service_curve())
        assert closed == pytest.approx(generic)
