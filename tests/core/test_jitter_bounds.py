"""Analytic jitter bounds."""

import pytest

from repro import Message, PriorityClass, units
from repro.core.jitter import JitterAnalysis
from repro.errors import EmptyAggregateError


def make_messages():
    return [
        Message.sporadic("urgent", min_interarrival=units.ms(20), size=100,
                         source="a", destination="z", deadline=units.ms(3)),
        Message.periodic("periodic", period=units.ms(20), size=1000,
                         source="b", destination="z"),
        Message.sporadic("background", min_interarrival=units.ms(160),
                         size=4000, source="c", destination="z"),
    ]


CAPACITY = units.mbps(10)


class TestJitterBounds:
    def test_jitter_is_worst_minus_best(self):
        analysis = JitterAnalysis(CAPACITY, technology_delay=units.us(16))
        bounds = analysis.priority_bounds(make_messages())
        for bound in bounds.values():
            assert bound.jitter == pytest.approx(
                bound.worst_case_delay - bound.best_case_delay)
            assert bound.jitter >= 0

    def test_best_case_is_the_smallest_flow_serialisation(self):
        analysis = JitterAnalysis(CAPACITY)
        bounds = analysis.priority_bounds(make_messages())
        assert bounds[PriorityClass.URGENT].best_case_delay == \
            pytest.approx(100 / CAPACITY)
        assert bounds[PriorityClass.BACKGROUND].best_case_delay == \
            pytest.approx(4000 / CAPACITY)

    def test_fcfs_worst_case_is_the_fcfs_bound(self):
        from repro import FcfsMultiplexerAnalysis
        analysis = JitterAnalysis(CAPACITY, technology_delay=units.us(16))
        fcfs = FcfsMultiplexerAnalysis(CAPACITY, units.us(16))
        messages = make_messages()
        bounds = analysis.fcfs_bounds(messages)
        for bound in bounds.values():
            assert bound.worst_case_delay == pytest.approx(
                fcfs.bound(messages).delay)

    def test_priority_reduces_the_urgent_class_jitter(self):
        analysis = JitterAnalysis(CAPACITY, technology_delay=units.us(16))
        messages = make_messages()
        fcfs = analysis.fcfs_bounds(messages)[PriorityClass.URGENT]
        priority = analysis.priority_bounds(messages)[PriorityClass.URGENT]
        assert priority.jitter < fcfs.jitter

    def test_empty_set_rejected(self):
        analysis = JitterAnalysis(CAPACITY)
        with pytest.raises(EmptyAggregateError):
            analysis.fcfs_bounds([])

    def test_simulated_jitter_stays_below_the_bound(self, small_case):
        """The E6 measurements never exceed the analytic jitter bound."""
        from repro.analysis import jitter_comparison
        from repro.analysis.validation import wire_level_messages
        analysis = JitterAnalysis(CAPACITY, technology_delay=units.us(16))
        # Wire-level sizes, and two multiplexing points in the star (station
        # uplink + switch egress): doubling the single-hop bound is a safe
        # envelope for the comparison.
        bounds = analysis.priority_bounds(wire_level_messages(small_case))
        rows = jitter_comparison(small_case, duration=units.ms(320))
        for row in rows:
            if row.technology != "ethernet-priority":
                continue
            assert row.worst_jitter <= 2 * bounds[row.priority].jitter + 1e-9
