"""Every script under ``examples/`` runs end to end.

The Quickstart and the worked examples are the documentation's entry
points; this smoke test executes each one in a subprocess (as a user
would) so a refactor that breaks an example fails tier-1 instead of
rotting silently in the docs.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _run(script: Path) -> subprocess.CompletedProcess:
    environment = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = (f"{src}{os.pathsep}{existing}"
                                 if existing else src)
    return subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=300, cwd=REPO_ROOT, env=environment)


class TestExamples:
    def test_the_examples_directory_is_not_empty(self):
        assert EXAMPLES, "examples/ contains no scripts to smoke-test"

    def test_quickstart_is_among_the_examples(self):
        assert EXAMPLES_DIR / "quickstart.py" in EXAMPLES

    @pytest.mark.parametrize(
        "script", EXAMPLES, ids=[path.stem for path in EXAMPLES])
    def test_example_runs_and_prints(self, script):
        completed = _run(script)
        assert completed.returncode == 0, (
            f"{script.name} exited {completed.returncode}:\n"
            f"{completed.stderr}")
        assert completed.stdout.strip(), (
            f"{script.name} printed nothing on stdout")
