"""Exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exception_type", [
        errors.ConfigurationError,
        errors.InvalidMessageError,
        errors.InvalidFlowError,
        errors.InvalidTopologyError,
        errors.RoutingError,
        errors.InvalidScheduleError,
        errors.InvalidWorkloadError,
        errors.AnalysisError,
        errors.UnstableSystemError,
        errors.EmptyAggregateError,
        errors.CurveDomainError,
        errors.SimulationError,
        errors.SchedulingInPastError,
        errors.BufferOverflowError,
        errors.SimulationNotRunError,
    ])
    def test_every_exception_derives_from_repro_error(self, exception_type):
        assert issubclass(exception_type, errors.ReproError)

    def test_routing_error_is_a_topology_error(self):
        assert issubclass(errors.RoutingError, errors.InvalidTopologyError)

    def test_invalid_message_is_a_configuration_error(self):
        assert issubclass(errors.InvalidMessageError,
                          errors.ConfigurationError)

    def test_unstable_system_is_an_analysis_error(self):
        assert issubclass(errors.UnstableSystemError, errors.AnalysisError)

    def test_scheduling_in_past_is_a_simulation_error(self):
        assert issubclass(errors.SchedulingInPastError,
                          errors.SimulationError)


class TestUnstableSystemError:
    def test_carries_rate_and_capacity(self):
        error = errors.UnstableSystemError("overload", offered_rate=2e6,
                                           capacity=1e6)
        assert error.offered_rate == 2e6
        assert error.capacity == 1e6

    def test_fields_default_to_none(self):
        error = errors.UnstableSystemError("overload")
        assert error.offered_rate is None
        assert error.capacity is None

    def test_is_raisable_and_catchable_as_repro_error(self):
        with pytest.raises(errors.ReproError):
            raise errors.UnstableSystemError("overload")
