"""The fault-tolerant executor: policy, retries, recovery, watchdog."""

import time

import pytest

from repro.exec import (
    ExecPolicy,
    FaultInjectedError,
    ParallelExecutor,
    RunHalted,
    backoff_delay,
)
from repro.exec import executor as executor_module

# Module-level so the functions pickle into pool workers.


def _double(task):
    return task * 2


def _boom(task):
    raise RuntimeError(f"boom on {task!r}")


def _slow_double(task):
    time.sleep(0.25)
    return task * 2


_WORKER_STATE = {}


def _remember(value):
    _WORKER_STATE["value"] = value


def _with_state(task):
    return (task, _WORKER_STATE.get("value"))


class TestPolicy:
    def test_defaults(self):
        policy = ExecPolicy()
        assert policy.retries == 2
        assert policy.timeout is None
        assert not policy.fail_fast
        assert policy.max_failures is None

    @pytest.mark.parametrize("kwargs", [
        dict(retries=-1),
        dict(timeout=0.0),
        dict(timeout=-1.0),
        dict(max_failures=-1),
        dict(backoff_base=-0.1),
        dict(backoff_cap=-1.0),
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecPolicy(**kwargs)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=0)

    def test_bad_fault_spec_fails_at_construction(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=1, fault_spec="nope@1")

    def test_fault_spec_defaults_to_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "exc@7")
        assert ParallelExecutor(jobs=1).plan.at("exc", 7, 0) is not None


class TestBackoff:
    def test_deterministic(self):
        assert backoff_delay(0, 3, 1) == backoff_delay(0, 3, 1)

    def test_zero_before_the_first_retry(self):
        assert backoff_delay(0, 3, 0) == 0.0
        assert backoff_delay(0, 3, 1) > 0.0

    def test_grows_roughly_exponentially_until_the_cap(self):
        # Jitter is in [0.5, 1.0): attempt n+2 always beats attempt n.
        delays = [backoff_delay(5, 0, attempt, base=0.1, cap=100.0)
                  for attempt in range(1, 8)]
        assert all(b > a for a, b in zip(delays, delays[2:]))
        assert backoff_delay(5, 0, 50, base=0.1, cap=1.5) == 1.5

    def test_varies_with_seed_cell_and_attempt(self):
        baseline = backoff_delay(0, 0, 1)
        assert backoff_delay(1, 0, 1) != baseline or \
            backoff_delay(2, 0, 1) != baseline

    def test_zero_base_disables_backoff(self):
        assert backoff_delay(0, 0, 3, base=0.0) == 0.0


class TestSerial:
    def test_happy_path(self):
        report = ParallelExecutor(jobs=1).map(_double, [1, 2, 3])
        assert report.ok
        assert report.ordered_results() == [2, 4, 6]
        assert report.executions == 3
        assert report.retried == 0

    def test_empty_tasks(self):
        report = ParallelExecutor(jobs=1).map(_double, [])
        assert report.ok
        assert report.ordered_results() == []

    def test_label_count_must_match(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=1).map(_double, [1, 2], labels=["a"])

    def test_transient_fault_is_retried(self):
        ex = ParallelExecutor(jobs=1, fault_spec="exc@1")
        ex.sleep = lambda _seconds: None
        report = ex.map(_double, [1, 2, 3])
        assert report.ok
        assert report.ordered_results() == [2, 4, 6]
        assert report.retried == 1
        assert report.executions == 4

    def test_exhausted_retries_become_a_structured_failure(self):
        ex = ParallelExecutor(jobs=1, policy=ExecPolicy(retries=1),
                              fault_spec="exc@1,exc@1.1")
        ex.sleep = lambda _seconds: None
        report = ex.map(_double, [1, 2, 3], labels=["a", "b", "c"])
        assert not report.ok
        assert report.ordered_results() == [2, 6]
        [failure] = report.failures
        assert (failure.index, failure.label) == (1, "b")
        assert failure.attempts == 2
        assert failure.kind == "exception"
        assert "FaultInjectedError" in failure.error
        assert report.failure_rows()[0][0] == 1
        assert "1 failed" in report.describe()

    def test_serial_crash_fault_is_retryable(self):
        ex = ParallelExecutor(jobs=1, fault_spec="crash@0")
        ex.sleep = lambda _seconds: None
        report = ex.map(_double, [5])
        assert report.ok
        assert report.retried == 1

    def test_backoff_delays_are_the_deterministic_stream(self):
        policy = ExecPolicy(retries=2, backoff_base=0.01, backoff_seed=9)
        ex = ParallelExecutor(jobs=1, policy=policy,
                              fault_spec="exc@0,exc@0.1")
        slept = []
        ex.sleep = slept.append
        assert ex.map(_double, [1]).ok
        assert slept == [
            backoff_delay(9, 0, 1, base=0.01, cap=policy.backoff_cap),
            backoff_delay(9, 0, 2, base=0.01, cap=policy.backoff_cap)]

    def test_fail_fast_aborts_after_the_first_failure(self):
        ex = ParallelExecutor(
            jobs=1, policy=ExecPolicy(retries=0, fail_fast=True),
            fault_spec="exc@1")
        report = ex.map(_double, [1, 2, 3, 4])
        assert report.aborted
        assert report.incomplete == [2, 3]
        assert report.ordered_results() == [2]

    def test_max_failures_budget(self):
        ex = ParallelExecutor(
            jobs=1, policy=ExecPolicy(retries=0, max_failures=1),
            fault_spec="exc@0,exc@1")
        report = ex.map(_double, [1, 2, 3, 4])
        assert report.aborted
        assert len(report.failures) == 2
        assert report.incomplete == [2, 3]

    def test_halt_fault_raises_run_halted(self):
        ex = ParallelExecutor(jobs=1, fault_spec="halt@1")
        with pytest.raises(RunHalted):
            ex.map(_double, [1, 2, 3])

    def test_serial_setup_and_serial_fn_are_used(self):
        calls = []
        ex = ParallelExecutor(jobs=1)
        report = ex.map(_boom, [1, 2],
                        serial_fn=lambda task: task + 10,
                        serial_setup=lambda: calls.append("setup"))
        assert report.ordered_results() == [11, 12]
        assert calls == ["setup"]


class TestParallel:
    def test_happy_path(self):
        report = ParallelExecutor(jobs=2).map(_double, list(range(6)))
        assert report.ok
        assert report.ordered_results() == [0, 2, 4, 6, 8, 10]
        assert report.executions == 6
        assert report.pool_rebuilds == 0

    def test_initializer_primes_every_worker(self):
        report = ParallelExecutor(jobs=2).map(
            _with_state, list(range(4)),
            initializer=_remember, initargs=("primed",))
        assert report.ok
        assert all(state == "primed"
                   for _, state in report.ordered_results())

    def test_worker_crash_rebuilds_the_pool_and_recovers(self):
        ex = ParallelExecutor(jobs=2, fault_spec="crash@2")
        ex.sleep = lambda _seconds: None
        report = ex.map(_double, list(range(6)))
        assert report.ok
        assert report.ordered_results() == [0, 2, 4, 6, 8, 10]
        assert report.worker_crashes >= 1
        assert report.pool_rebuilds >= 1
        assert report.retried >= 1

    def test_transient_exception_is_retried_in_the_pool(self):
        ex = ParallelExecutor(jobs=2, fault_spec="exc@1")
        ex.sleep = lambda _seconds: None
        report = ex.map(_double, list(range(4)))
        assert report.ok
        assert report.retried == 1

    def test_permanent_failure_does_not_sink_the_run(self):
        ex = ParallelExecutor(jobs=2, policy=ExecPolicy(retries=0))
        report = ex.map(_boom, [1, 2])
        assert not report.ok
        assert len(report.failures) == 2
        assert all(failure.kind == "exception"
                   for failure in report.failures)

    def test_watchdog_times_out_the_culprit_only(self):
        ex = ParallelExecutor(
            jobs=2, policy=ExecPolicy(retries=0, timeout=0.5),
            fault_spec="slow@1:30")
        report = ex.map(_double, list(range(4)))
        assert not report.ok
        [failure] = report.failures
        assert failure.index == 1
        assert failure.kind == "timeout"
        assert report.timeouts == 1
        assert sorted(report.results) == [0, 2, 3]

    def test_pool_start_failure_degrades_to_serial(self, monkeypatch):
        def _refuse(**_kwargs):
            raise OSError("fork refused")
        monkeypatch.setattr(executor_module, "_POOL_FACTORY", _refuse)
        seen = []
        report = ParallelExecutor(jobs=4).map(
            _boom, [1, 2, 3], serial_fn=lambda task: task * 3,
            serial_setup=lambda: seen.append(True))
        assert report.serial_fallback
        assert report.ok
        assert report.ordered_results() == [3, 6, 9]
        assert seen == [True]

    def test_halt_fault_raises_run_halted(self):
        ex = ParallelExecutor(jobs=2, fault_spec="halt@3")
        with pytest.raises(RunHalted):
            ex.map(_double, list(range(8)))

    def test_fail_fast_reports_the_rest_incomplete(self):
        # The healthy cells take 0.25 s each, so cell 0's immediate
        # failure is always collected before any of them completes and
        # the abort is deterministic (in general, cells already in
        # flight when a failure lands may still finish: best-effort).
        ex = ParallelExecutor(
            jobs=2, policy=ExecPolicy(retries=0, fail_fast=True),
            fault_spec="exc@0")
        report = ex.map(_slow_double, list(range(8)))
        assert report.aborted
        assert not report.ok
        assert [f.index for f in report.failures] == [0]
        assert set(report.incomplete) | set(report.results) \
            | {f.index for f in report.failures} == set(range(8))
        assert len(report.incomplete) >= 5


def test_faulted_and_clean_runs_return_identical_results():
    """The executor's whole contract: faults change *how*, never *what*."""
    tasks = list(range(8))
    clean = ParallelExecutor(jobs=2).map(_double, tasks)
    ex = ParallelExecutor(jobs=2, fault_spec="crash@1,exc@3,slow@5:0.01")
    ex.sleep = lambda _seconds: None
    chaotic = ex.map(_double, tasks)
    assert chaotic.ok
    assert chaotic.ordered_results() == clean.ordered_results()
