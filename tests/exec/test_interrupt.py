"""Interrupted ``--jobs N`` runs: no orphan workers, clean resume.

These tests drive the real CLI in a subprocess (its own session, so the
whole process tree is observable via the process group) and interrupt it
the two ways operators do: SIGTERM to the parent, and ``kill -9``.  The
first must terminate every pool worker before exiting; the second leaves
orphans by definition — but the store must let ``--resume`` finish the
campaign byte-identically.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaigns import CampaignRunner, builtin_scenarios
from repro.store import ResultStore

REPO_ROOT = Path(__file__).resolve().parents[2]

pytestmark = pytest.mark.skipif(
    not Path("/proc").is_dir(), reason="needs /proc to observe orphans")


def _spawn_campaign(tmp_path: Path, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_FAULTS", None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "--run", "all",
         "--jobs", "2", *extra],
        cwd=tmp_path, env=env, start_new_session=True,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE)


def _group_members(pgid: int) -> list[int]:
    """Live (non-zombie) PIDs in the process group, via /proc."""
    members = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            stat = (entry / "stat").read_text()
        except OSError:  # pid exited while scanning
            continue
        fields = stat.rsplit(")", 1)[1].split()
        state, group = fields[0], int(fields[2])
        if group == pgid and state != "Z":
            members.append(int(entry.name))
    return members


def _children_of(pid: int, pgid: int) -> list[int]:
    children = []
    for member in _group_members(pgid):
        try:
            stat = (Path("/proc") / str(member) / "stat").read_text()
        except OSError:
            continue
        if int(stat.rsplit(")", 1)[1].split()[1]) == pid:
            children.append(member)
    return children


def _wait_until(predicate, *, timeout: float, message: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(message)


def _reap_group(pgid: int) -> None:
    try:
        os.killpg(pgid, signal.SIGKILL)
    except ProcessLookupError:
        pass


class TestSigterm:
    def test_sigterm_exits_130_and_leaves_no_orphan_workers(self, tmp_path):
        # Two workers hang in 60 s injected sleeps; the rest of the
        # queue keeps the run busy until we interrupt it.
        proc = _spawn_campaign(tmp_path, "--no-store",
                               "--faults", "slow@0:60,slow@1:60")
        pgid = proc.pid
        try:
            _wait_until(lambda: len(_children_of(proc.pid, pgid)) >= 2,
                        timeout=30.0,
                        message="pool workers never appeared")
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30.0) == 130
            assert b"interrupted" in proc.stderr.read()
            # Workers must die with the parent — poll out the teardown.
            _wait_until(lambda: not _group_members(pgid), timeout=10.0,
                        message=f"orphans survived: "
                                f"{_group_members(pgid)}")
        finally:
            _reap_group(pgid)
            proc.stdout.close()
            proc.stderr.close()


class TestSigkillResume:
    def test_kill_9_then_resume_is_byte_identical(self, tmp_path):
        reference = tmp_path / "reference.csv"
        CampaignRunner().run(builtin_scenarios()).write_csv(reference)

        # Cells 6 and 7 hang in injected sleeps, so the first six cells
        # persist to the store and the parent is mid-campaign for sure
        # when the SIGKILL lands (kill -9 cannot be trapped: workers ARE
        # orphaned; the store is what makes the interruption safe).
        store_root = tmp_path / "store"
        proc = _spawn_campaign(tmp_path, "--store", str(store_root),
                               "--faults", "slow@6:60,slow@7:60")
        pgid = proc.pid
        try:
            _wait_until(
                lambda: len(list(store_root.glob("objects/*/*.json"))) >= 3,
                timeout=60.0,
                message="no cells were persisted before the kill")
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30.0)
        finally:
            _reap_group(pgid)
            proc.stdout.close()
            proc.stderr.close()

        persisted = len(list(store_root.glob("objects/*/*.json")))
        assert persisted >= 3
        store = ResultStore(store_root)
        result = CampaignRunner(store=store, resume=True).run(
            builtin_scenarios())
        resumed = tmp_path / "resumed.csv"
        result.write_csv(resumed)
        assert result.resumed >= 3
        assert resumed.read_bytes() == reference.read_bytes()
