"""Fault grammar, activation context and store-side hooks."""

import errno
import time

import pytest

from repro.exec import faults
from repro.exec.faults import (
    FAULTS_ENV,
    FaultInjectedError,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    SimulatedCrashError,
    cell_context,
    corrupt_index_line,
    corrupt_record,
    halt_requested,
    plan_from_env,
    store_fault,
)


class TestGrammar:
    def test_single_entry(self):
        plan = FaultPlan.parse("crash@3")
        assert plan.specs == (FaultSpec("crash", 3),)

    def test_attempt_and_param(self):
        plan = FaultPlan.parse("exc@1.2, slow@0:0.5")
        assert plan.specs == (FaultSpec("exc", 1, 2),
                              FaultSpec("slow", 0, 0, 0.5))

    def test_semicolon_separator_and_whitespace(self):
        plan = FaultPlan.parse("  crash@0 ; exc@1 ,, halt@2  ")
        assert [spec.kind for spec in plan.specs] == ["crash", "exc", "halt"]

    def test_round_trips_through_str(self):
        text = "crash@3,exc@1.2,slow@0:0.5,store-eio@4,halt@7"
        assert str(FaultPlan.parse(str(FaultPlan.parse(text)))) == text

    def test_blank_and_none_parse_to_the_empty_plan(self):
        assert not FaultPlan.parse(None)
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse("  ,  ; ")
        assert str(FaultPlan.parse(None)) == ""

    @pytest.mark.parametrize("text", [
        "crash",              # no @cell
        "frobnicate@1",       # unknown kind
        "crash@x",            # non-integer cell
        "crash@1.y",          # non-integer attempt
        "slow@1:abc",         # non-numeric param
        "crash@-1",           # negative cell
    ])
    def test_bad_entries_rejected(self, text):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(text)

    def test_fault_plan_error_is_a_value_error(self):
        assert issubclass(FaultPlanError, ValueError)

    def test_at_matches_kind_cell_attempt_exactly(self):
        plan = FaultPlan.parse("exc@1.2")
        assert plan.at("exc", 1, 2) is not None
        assert plan.at("exc", 1, 0) is None
        assert plan.at("exc", 2, 2) is None
        assert plan.at("crash", 1, 2) is None

    def test_plan_from_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "crash@5")
        assert plan_from_env().at("crash", 5, 0) is not None
        monkeypatch.delenv(FAULTS_ENV)
        assert not plan_from_env()


class TestCellContext:
    def test_exc_fault_raises_on_entry(self):
        plan = FaultPlan.parse("exc@2")
        with pytest.raises(FaultInjectedError):
            with cell_context(plan, 2, 0, in_worker=False):
                pytest.fail("the body must not run")

    def test_exc_fault_only_fires_at_its_attempt(self):
        plan = FaultPlan.parse("exc@2.1")
        with cell_context(plan, 2, 0, in_worker=False):
            pass
        with pytest.raises(FaultInjectedError):
            with cell_context(plan, 2, 1, in_worker=False):
                pass

    def test_serial_crash_degrades_to_an_exception(self):
        plan = FaultPlan.parse("crash@0")
        with pytest.raises(SimulatedCrashError):
            with cell_context(plan, 0, 0, in_worker=False):
                pass

    def test_slow_fault_sleeps_its_parameter(self):
        plan = FaultPlan.parse("slow@0:0.05")
        started = time.monotonic()
        with cell_context(plan, 0, 0, in_worker=False):
            pass
        assert time.monotonic() - started >= 0.05

    def test_context_cleared_after_exit_and_after_fault(self):
        plan = FaultPlan.parse("store-eio@0,exc@1")
        with cell_context(plan, 0, 0, in_worker=False):
            pass
        store_fault("write")  # no active context: must be a no-op
        with pytest.raises(FaultInjectedError):
            with cell_context(plan, 1, 0, in_worker=False):
                pass
        store_fault("write")


class TestStoreHooks:
    def test_hooks_are_no_ops_outside_a_cell(self):
        store_fault("write")
        store_fault("replace")
        assert corrupt_record("payload") == "payload"
        assert corrupt_index_line("line") == "line"

    @pytest.mark.parametrize("kind,code", [
        ("store-eio", errno.EIO),
        ("store-enospc", errno.ENOSPC),
    ])
    def test_write_faults_raise_their_errno(self, kind, code):
        plan = FaultPlan.parse(f"{kind}@3")
        with cell_context(plan, 3, 0, in_worker=False):
            with pytest.raises(OSError) as info:
                store_fault("write")
            assert info.value.errno == code
            store_fault("replace")  # the write fault leaves replace alone

    def test_replace_fault_targets_only_the_replace(self):
        plan = FaultPlan.parse("store-replace@3")
        with cell_context(plan, 3, 0, in_worker=False):
            store_fault("write")
            with pytest.raises(OSError):
                store_fault("replace")

    def test_corrupt_record_truncates_for_the_active_cell_only(self):
        plan = FaultPlan.parse("store-corrupt@1")
        data = "x" * 100
        with cell_context(plan, 1, 0, in_worker=False):
            assert len(corrupt_record(data)) < len(data)
        with cell_context(plan, 2, 0, in_worker=False):
            assert corrupt_record(data) == data

    def test_corrupt_index_line_truncates_for_the_active_cell_only(self):
        plan = FaultPlan.parse("store-index@1")
        line = "y" * 100
        with cell_context(plan, 1, 0, in_worker=False):
            assert len(corrupt_index_line(line)) < len(line)
        with cell_context(plan, 2, 0, in_worker=False):
            assert corrupt_index_line(line) == line


class TestHalt:
    def test_halt_requested_matches_cell_and_attempt(self):
        plan = FaultPlan.parse("halt@4")
        assert halt_requested(plan, 4, 0)
        assert not halt_requested(plan, 4, 1)
        assert not halt_requested(plan, 3, 0)

    def test_run_halted_cannot_be_caught_as_exception(self):
        assert not issubclass(faults.RunHalted, Exception)
