"""CLI surface of the execution layer: flags, tables, exit codes."""

import pytest

from repro.cli import main


class TestFlagValidation:
    @pytest.mark.parametrize("argv", [
        ["campaign", "--run", "paper-real-case", "--retries", "-1"],
        ["campaign", "--run", "paper-real-case", "--timeout", "0"],
        ["campaign", "--run", "paper-real-case", "--max-failures", "-1"],
        ["campaign", "--run", "paper-real-case", "--faults", "bogus@1"],
        ["simulate", "--seeds", "1", "--faults", "crash@-2"],
    ])
    def test_bad_exec_flags_exit_2_with_an_error_line(self, argv, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert err.count("\n") == 1

    def test_bad_env_fault_plan_is_caught_up_front(self, capsys,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "nope@1")
        assert main(["campaign", "--run", "paper-real-case"]) == 2
        assert "error: bad fault entry" in capsys.readouterr().err

    def test_explicit_faults_flag_overrides_the_environment(
            self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FAULTS", "exc@0,exc@0.1,exc@0.2")
        assert main(["campaign", "--run", "paper-real-case",
                     "--store", str(tmp_path / "s"), "--faults", ""]) == 0


class TestFailureRendering:
    def test_failed_cells_render_a_table_before_the_error_line(
            self, capsys, tmp_path):
        code = main(["campaign", "--run", "all", "--retries", "0",
                     "--store", str(tmp_path / "s"),
                     "--faults", "exc@1"])
        captured = capsys.readouterr()
        assert code == 2
        assert "Failed scenarios" in captured.err
        assert "FaultInjectedError" in captured.err
        # The error: line comes last, after the table.
        assert captured.err.rstrip().splitlines()[-1].startswith("error: ")
        assert "--resume" in captured.err
        # Partial results were still printed.
        assert "scenarios," in captured.out

    def test_transient_fault_is_retried_to_exit_zero(self, capsys,
                                                     tmp_path):
        code = main(["campaign", "--run", "paper-real-case",
                     "--store", str(tmp_path / "s"), "--jobs", "2",
                     "--faults", "exc@0"])
        assert code == 0
        assert capsys.readouterr().err == ""

    def test_fuzz_failures_exit_2(self, capsys, tmp_path):
        code = main(["fuzz", "--count", "3", "--no-corpus", "--no-store",
                     "--retries", "0", "--faults", "exc@1"])
        captured = capsys.readouterr()
        assert code == 2
        assert "Failed cells" in captured.err

    def test_report_failures_render_the_experiment_table(self, capsys,
                                                         tmp_path):
        code = main(["report", "--experiment", "figure1,violations",
                     "--output", str(tmp_path / "artifacts"),
                     "--no-store", "--retries", "0", "--faults", "exc@1"])
        captured = capsys.readouterr()
        assert code == 2
        assert "Failed experiments" in captured.err
        assert captured.err.rstrip().splitlines()[-1].startswith("error: ")


class TestHaltAndResume:
    def test_halt_exits_130_then_resume_completes(self, capsys, tmp_path):
        store = str(tmp_path / "s")
        code = main(["campaign", "--run", "all", "--store", store,
                     "--faults", "halt@4"])
        captured = capsys.readouterr()
        assert code == 130
        assert "halted:" in captured.err
        code = main(["campaign", "--run", "all", "--store", store,
                     "--resume"])
        captured = capsys.readouterr()
        assert code == 0
        assert "resumed 4/" in captured.out


class TestStoreStatsIntegrity:
    def test_reports_corrupt_record_and_index_counts(self, capsys,
                                                     tmp_path):
        store = str(tmp_path / "s")
        assert main(["campaign",
                     "--run", "paper-real-case,figure1-fast-ethernet",
                     "--store", store,
                     "--faults", "store-corrupt@0,store-index@1"]) == 0
        capsys.readouterr()
        assert main(["store", "stats", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "integrity: 1 corrupt records" in out
        assert "1 corrupt index lines" in out
        assert "DEGRADED" in out

    def test_clean_store_reports_zero(self, capsys, tmp_path):
        store = str(tmp_path / "s")
        assert main(["campaign", "--run", "paper-real-case",
                     "--store", store]) == 0
        capsys.readouterr()
        assert main(["store", "stats", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "integrity: 0 corrupt records" in out
        assert "healthy" in out
