"""Chaos suite: fault-injected runs produce byte-identical artifacts.

The contract of the whole execution layer: injected worker crashes,
transient task exceptions and store I/O faults may change *how* a
campaign runs (retries, pool rebuilds, unpersisted cells) but never
*what* it produces.  Every test here runs a subsystem once cleanly and
once under a deterministic fault plan, then compares final artifacts
byte for byte.  The ``halt`` tests additionally exercise the
crash-resume path: a run stopped mid-campaign is finished with
``resume=True`` and must converge to the same bytes.
"""

from pathlib import Path

import pytest

from repro import units
from repro.campaigns import CampaignRunner, builtin_scenarios
from repro.errors import ExecutionFailedError
from repro.exec import ExecPolicy, RunHalted
from repro.fuzz import FuzzCampaign
from repro.reports import ReportPipeline, select_experiments
from repro.simulation.campaign import SimulationCampaign
from repro.store import ResultStore

#: No real sleeping between retries in tests.
FAST = ExecPolicy(backoff_base=0.0)

#: Worker crash + transient exception + every store fault, spread over
#: different cells so each recovery path runs in one campaign.
CHAOS = ("crash@1,exc@2,store-eio@0,store-corrupt@3,"
         "store-index@4,store-replace@5")


def _campaign_csv(tmp_path: Path, name: str, **kwargs) -> bytes:
    runner = CampaignRunner(exec_policy=FAST, **kwargs)
    result = runner.run(builtin_scenarios())
    path = tmp_path / f"{name}.csv"
    result.write_csv(path)
    return path.read_bytes()


class TestCampaignChaos:
    def test_serial_fault_injection_is_invisible_in_the_output(
            self, tmp_path):
        reference = _campaign_csv(tmp_path, "clean")
        chaotic = _campaign_csv(
            tmp_path, "chaos", faults="crash@1,exc@2,exc@3.1",
            store=ResultStore(tmp_path / "store"))
        assert chaotic == reference

    def test_parallel_fault_injection_is_invisible_in_the_output(
            self, tmp_path):
        reference = _campaign_csv(tmp_path, "clean")
        chaotic = _campaign_csv(
            tmp_path, "chaos", jobs=2, faults=CHAOS,
            store=ResultStore(tmp_path / "store"))
        assert chaotic == reference

    def test_store_faults_degrade_writes_but_not_results(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        reference = _campaign_csv(tmp_path, "clean")
        chaotic = _campaign_csv(
            tmp_path, "chaos", store=store,
            faults="store-eio@0,store-enospc@1,store-replace@2")
        assert chaotic == reference
        # The three injected write failures were degraded, not raised.
        assert store.stats.write_errors == 3
        assert store.stats.writes == len(builtin_scenarios()) - 3

    def test_halt_then_resume_is_byte_identical(self, tmp_path):
        reference = _campaign_csv(tmp_path, "clean")
        store_root = tmp_path / "store"
        with pytest.raises(RunHalted):
            _campaign_csv(tmp_path, "halted", faults="halt@4",
                          store=ResultStore(store_root))
        # Cells before the halt were persisted; finish with --resume.
        resumed_store = ResultStore(store_root)
        resumed = _campaign_csv(tmp_path, "resumed", store=resumed_store,
                                resume=True)
        assert resumed == reference
        assert resumed_store.stats.hits == 4

    def test_failed_cells_drop_rows_but_keep_the_rest(self, tmp_path):
        runner = CampaignRunner(
            exec_policy=ExecPolicy(retries=0, backoff_base=0.0),
            faults="exc@1")
        result = runner.run(builtin_scenarios())
        assert len(result.results) == len(builtin_scenarios()) - 1
        [failure] = result.failures
        assert failure.index == 1
        assert result.exec_report is not None
        assert not result.exec_report.ok


def _grid(**kwargs) -> SimulationCampaign:
    return SimulationCampaign(
        station_count=6, workload_seed=3, seeds=(1, 2),
        scenarios=("synchronized",),
        policies=("fcfs", "strict-priority"),
        duration=units.ms(40), exec_policy=FAST, **kwargs)


class TestSimulateChaos:
    def test_fault_injected_grid_is_byte_identical(self, tmp_path):
        reference = tmp_path / "clean.csv"
        _grid().run().write_csv(reference)
        chaotic = tmp_path / "chaos.csv"
        _grid(jobs=2, faults="crash@0,exc@2,store-corrupt@1",
              store=ResultStore(tmp_path / "store")).run().write_csv(chaotic)
        assert chaotic.read_bytes() == reference.read_bytes()

    def test_halt_then_resume_is_byte_identical(self, tmp_path):
        reference = tmp_path / "clean.csv"
        _grid().run().write_csv(reference)
        store_root = tmp_path / "store"
        with pytest.raises(RunHalted):
            _grid(faults="halt@2", store=ResultStore(store_root)).run()
        result = _grid(store=ResultStore(store_root), resume=True).run()
        resumed = tmp_path / "resumed.csv"
        result.write_csv(resumed)
        assert result.resumed == 2
        assert resumed.read_bytes() == reference.read_bytes()


def _fuzz(**kwargs) -> FuzzCampaign:
    return FuzzCampaign(count=4, seed=11, duration=units.ms(20),
                        exec_policy=FAST, **kwargs)


class TestFuzzChaos:
    def test_fault_injected_fuzz_is_byte_identical(self, tmp_path):
        reference = tmp_path / "clean.csv"
        _fuzz().run().write_csv(reference)
        chaotic = tmp_path / "chaos.csv"
        _fuzz(jobs=2, faults="crash@1,exc@0,store-eio@2",
              store=ResultStore(tmp_path / "store")).run().write_csv(chaotic)
        assert chaotic.read_bytes() == reference.read_bytes()

    def test_halt_then_resume_is_byte_identical(self, tmp_path):
        reference = tmp_path / "clean.csv"
        _fuzz().run().write_csv(reference)
        store_root = tmp_path / "store"
        with pytest.raises(RunHalted):
            _fuzz(faults="halt@2", store=ResultStore(store_root)).run()
        result = _fuzz(store=ResultStore(store_root), resume=True).run()
        resumed = tmp_path / "resumed.csv"
        result.write_csv(resumed)
        assert result.resumed == 2
        assert resumed.read_bytes() == reference.read_bytes()


class TestReportChaos:
    def test_fault_injected_build_is_byte_identical(self, tmp_path):
        selected = select_experiments("figure1,violations")
        clean = ReportPipeline(tmp_path / "a", experiments=selected,
                               exec_policy=FAST)
        run = clean.run()
        chaotic = ReportPipeline(
            tmp_path / "b", experiments=selected, exec_policy=FAST,
            faults="exc@0,store-corrupt@1",
            store=ResultStore(tmp_path / "store"))
        chaotic.run()
        for relative in run.files:
            assert (tmp_path / "a" / relative).read_bytes() \
                == (tmp_path / "b" / relative).read_bytes()

    def test_permanent_build_failure_raises_with_failures(self, tmp_path):
        selected = select_experiments("figure1,violations")
        pipeline = ReportPipeline(
            tmp_path / "out", experiments=selected,
            exec_policy=ExecPolicy(retries=0, backoff_base=0.0),
            faults="exc@1")
        with pytest.raises(ExecutionFailedError) as info:
            pipeline.run()
        [failure] = info.value.failures
        assert failure.index == 1
        assert failure.kind == "exception"
