"""Graph topology specs: parsing, validation, conversion, fingerprints."""

from __future__ import annotations

import json

import pytest

from repro import units
from repro.errors import ConfigurationError, InvalidTopologyError
from repro.store import fingerprint
from repro.topology.graph import (
    GraphLink,
    GraphNode,
    GraphTopologySpec,
    diamond_graph_spec,
    graph_spec_from_network,
    load_topology_file,
    random_graph_spec,
    ring_graph_spec,
    star_graph_spec,
)


def routing_digest(spec):
    """All shortest routes of a spec, as a comparable tuple."""
    from repro.topology.routing import RoutingEngine

    engine = RoutingEngine(spec)
    return tuple(engine.shortest_path(a, b)
                 for a in spec.end_systems
                 for b in spec.end_systems if a != b)


class TestJsonRoundTrip:
    def test_to_dict_from_dict_is_identity(self):
        for spec in (star_graph_spec(4), diamond_graph_spec(6),
                     ring_graph_spec(6, switch_count=3),
                     random_graph_spec(6, switch_count=4, seed=3)):
            assert GraphTopologySpec.from_dict(spec.to_dict()) == spec

    def test_json_file_round_trip(self, tmp_path):
        spec = diamond_graph_spec(8)
        path = tmp_path / "diamond.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert load_topology_file(path) == spec

    def test_ports_and_directed_links_survive(self):
        spec = GraphTopologySpec(
            name="ported",
            nodes=(GraphNode("es-a", "end-system"),
                   GraphNode("es-b", "end-system"),
                   GraphNode("sw-1", "switch",
                             technology_delay=units.us(16))),
            links=(GraphLink("es-a", "sw-1", source_port=0, target_port=1),
                   GraphLink("es-b", "sw-1", directed=True),
                   GraphLink("sw-1", "es-b", directed=True)))
        assert GraphTopologySpec.from_dict(spec.to_dict()) == spec

    def test_unknown_document_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown keys: extra"):
            GraphTopologySpec.from_dict(
                {"name": "x", "nodes": [], "links": [], "extra": 1})

    def test_unknown_node_key_rejected(self):
        with pytest.raises(ConfigurationError,
                           match=r"nodes\[0\]: unknown keys: speed"):
            GraphTopologySpec.from_dict(
                {"name": "x",
                 "nodes": [{"name": "a", "kind": "switch", "speed": 3}],
                 "links": []})

    def test_unknown_link_key_rejected(self):
        with pytest.raises(ConfigurationError,
                           match=r"links\[0\]: unknown keys: cost"):
            GraphTopologySpec.from_dict(
                {"name": "x",
                 "nodes": [{"name": "a", "kind": "switch"},
                           {"name": "b", "kind": "switch"}],
                 "links": [{"source": "a", "target": "b", "cost": 2}]})

    def test_non_numeric_rate_rejected(self):
        with pytest.raises(ConfigurationError, match="must be a number"):
            GraphTopologySpec.from_dict(
                {"name": "x",
                 "nodes": [{"name": "a", "kind": "switch"},
                           {"name": "b", "kind": "switch"}],
                 "links": [{"source": "a", "target": "b",
                            "rate_mbps": "fast"}]})

    def test_malformed_json_names_the_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError,
                           match="not a valid JSON document"):
            load_topology_file(path)

    def test_unknown_extension_rejected(self, tmp_path):
        path = tmp_path / "topology.yaml"
        path.write_text("irrelevant")
        with pytest.raises(ConfigurationError,
                           match="unknown topology format"):
            load_topology_file(path)


class TestCsvLoader:
    CSV = """\
# wcdTool-style topology
ES,station-00
ES,station-01
SW,sw-1,20
LINK,l0,station-00,0,sw-1,1,100,2
LINK,l1,station-01,0,sw-1,2
"""

    def test_csv_round_trip(self, tmp_path):
        path = tmp_path / "net.csv"
        path.write_text(self.CSV)
        spec = load_topology_file(path)
        assert spec.name == "net"
        assert spec.end_systems == ("station-00", "station-01")
        assert spec.switches == ("sw-1",)
        assert spec.technology_delay("sw-1") == pytest.approx(units.us(20))
        first = spec.edge("station-00", "sw-1")
        assert first.rate == pytest.approx(units.mbps(100))
        assert first.latency == pytest.approx(units.us(2))
        assert first.source_port == 0 and first.target_port == 1
        # Defaults: 10 Mbps, no latency.
        second = spec.edge("station-01", "sw-1")
        assert second.rate == pytest.approx(units.mbps(10))
        assert second.latency == 0.0
        spec.validated()

    def test_unknown_row_type_rejected(self, tmp_path):
        path = tmp_path / "net.csv"
        path.write_text("ROUTER,r1\n")
        with pytest.raises(ConfigurationError, match="unknown row type"):
            load_topology_file(path)

    def test_short_link_row_rejected(self, tmp_path):
        path = tmp_path / "net.csv"
        path.write_text("LINK,l0,station-00\n")
        with pytest.raises(ConfigurationError, match="missing field"):
            load_topology_file(path)

    def test_non_numeric_rate_field_rejected(self, tmp_path):
        path = tmp_path / "net.csv"
        path.write_text("LINK,l0,station-00,0,sw-1,1,fast\n")
        with pytest.raises(ConfigurationError, match="malformed row"):
            load_topology_file(path)


class TestStructuralValidation:
    def test_self_loop_rejected_at_construction(self):
        with pytest.raises(InvalidTopologyError,
                           match="cyclic link: 'sw' connects to itself"):
            GraphLink("sw", "sw")

    def test_end_system_with_technology_delay_rejected(self):
        with pytest.raises(InvalidTopologyError, match="does not relay"):
            GraphNode("es-a", "end-system", technology_delay=units.us(1))

    def test_duplicate_node_reported(self):
        spec = GraphTopologySpec(
            nodes=(GraphNode("a", "switch"), GraphNode("a", "switch"),
                   GraphNode("es", "end-system")),
            links=(GraphLink("es", "a"),))
        assert any("duplicate node 'a'" in problem
                   for problem in spec.problems())

    def test_unknown_endpoint_reported(self):
        spec = GraphTopologySpec(
            nodes=(GraphNode("es", "end-system"),
                   GraphNode("sw", "switch")),
            links=(GraphLink("es", "sw"), GraphLink("sw", "ghost")))
        assert any("unknown node 'ghost'" in problem
                   for problem in spec.problems())

    def test_port_clash_reported(self):
        spec = GraphTopologySpec(
            nodes=(GraphNode("es-a", "end-system"),
                   GraphNode("es-b", "end-system"),
                   GraphNode("sw", "switch")),
            links=(GraphLink("es-a", "sw", target_port=1),
                   GraphLink("es-b", "sw", target_port=1)))
        assert any("port 1 of 'sw' is used by 2 links" in problem
                   for problem in spec.problems())

    def test_disconnected_pair_reported(self):
        spec = GraphTopologySpec(
            nodes=(GraphNode("es-a", "end-system"),
                   GraphNode("es-b", "end-system"),
                   GraphNode("sw-1", "switch"),
                   GraphNode("sw-2", "switch")),
            links=(GraphLink("es-a", "sw-1"), GraphLink("es-b", "sw-2")))
        problems = spec.problems()
        assert "disconnected: no route from 'es-a' to 'es-b'" in problems
        assert spec.problems(connected=False) == ()
        with pytest.raises(InvalidTopologyError, match="disconnected"):
            spec.validated()

    def test_end_system_degree_enforced(self):
        spec = GraphTopologySpec(
            nodes=(GraphNode("es-a", "end-system"),
                   GraphNode("es-b", "end-system"),
                   GraphNode("sw-1", "switch"),
                   GraphNode("sw-2", "switch")),
            links=(GraphLink("es-a", "sw-1"), GraphLink("es-a", "sw-2"),
                   GraphLink("sw-1", "sw-2"), GraphLink("es-b", "sw-2")))
        assert any("exactly one uplink" in problem
                   for problem in spec.problems())

    def test_validated_mentions_remaining_problem_count(self):
        spec = GraphTopologySpec(
            nodes=(GraphNode("a", "switch"), GraphNode("a", "switch")),
            links=())
        with pytest.raises(InvalidTopologyError, match="more problems"):
            spec.validated()


class TestNetworkConversion:
    def test_star_spec_converts_to_the_legacy_star(self):
        from repro.topology import single_switch_star

        network = star_graph_spec(6).to_network()
        legacy = single_switch_star(6)
        assert sorted(network.stations) == sorted(legacy.stations)
        assert network.switches == legacy.switches
        assert {(l.node_a, l.node_b) for l in network.links()} == \
            {(l.node_a, l.node_b) for l in legacy.links()}

    def test_round_trip_through_legacy_network(self):
        spec = diamond_graph_spec(6)
        again = graph_spec_from_network(spec.to_network())
        assert GraphTopologySpec.from_dict(again.to_dict()) == again
        assert sorted(again.end_systems) == sorted(spec.end_systems)
        assert routing_digest(again) == routing_digest(spec)

    def test_directed_pair_merges_into_full_duplex(self):
        spec = GraphTopologySpec(
            name="duplex",
            nodes=(GraphNode("es-a", "end-system"),
                   GraphNode("es-b", "end-system"),
                   GraphNode("sw", "switch")),
            links=(GraphLink("es-a", "sw", directed=True),
                   GraphLink("sw", "es-a", directed=True),
                   GraphLink("es-b", "sw")))
        network = spec.to_network()
        assert network.link("es-a", "sw").capacity == units.mbps(10)

    def test_directed_link_without_reverse_rejected(self):
        spec = GraphTopologySpec(
            name="one-way",
            nodes=(GraphNode("es-a", "end-system"),
                   GraphNode("es-b", "end-system"),
                   GraphNode("sw", "switch")),
            links=(GraphLink("es-a", "sw"),
                   GraphLink("es-b", "sw", directed=True),
                   GraphLink("sw", "es-b", directed=True,
                             rate=units.mbps(100))))
        with pytest.raises(InvalidTopologyError, match="disagree on rate"):
            spec.to_network()

    def test_directed_fabric_link_without_reverse_rejected(self):
        # The triangle keeps both directions reachable (via sw-3), so
        # structural validation passes and the conversion itself has to
        # reject the one-way sw-1 -> sw-2 fabric link.
        spec = GraphTopologySpec(
            name="one-way-fabric",
            nodes=(GraphNode("es-a", "end-system"),
                   GraphNode("es-b", "end-system"),
                   GraphNode("sw-1", "switch"),
                   GraphNode("sw-2", "switch"),
                   GraphNode("sw-3", "switch")),
            links=(GraphLink("es-a", "sw-1"),
                   GraphLink("es-b", "sw-2"),
                   GraphLink("sw-1", "sw-3"),
                   GraphLink("sw-3", "sw-2"),
                   GraphLink("sw-1", "sw-2", directed=True)))
        with pytest.raises(InvalidTopologyError, match="no reverse"):
            spec.to_network()


class TestFingerprints:
    def test_equal_specs_share_a_fingerprint(self):
        assert fingerprint(diamond_graph_spec(8)) == \
            fingerprint(diamond_graph_spec(8))

    def test_any_attribute_change_moves_the_fingerprint(self):
        base = fingerprint(random_graph_spec(8, switch_count=4, seed=0))
        assert fingerprint(random_graph_spec(8, switch_count=4,
                                             seed=1)) != base
        assert fingerprint(random_graph_spec(8, switch_count=5,
                                             seed=0)) != base
        assert fingerprint(random_graph_spec(
            8, switch_count=4, seed=0,
            capacity=units.mbps(100))) != base

    def test_random_family_is_seed_deterministic(self):
        assert random_graph_spec(10, switch_count=6, extra_links=3,
                                 seed=42) == \
            random_graph_spec(10, switch_count=6, extra_links=3, seed=42)
