"""Topology graph and routing."""

import pytest

from repro import Flow, Message, Network, units
from repro.errors import InvalidTopologyError, RoutingError
from repro.topology import NodeKind


def small_network():
    network = Network("test")
    network.add_switch("sw", technology_delay=units.us(16))
    for name in ("a", "b", "c"):
        network.add_station(name)
        network.add_link(name, "sw", capacity=units.mbps(10),
                         propagation_delay=1e-6)
    return network


class TestConstruction:
    def test_node_kinds(self):
        network = small_network()
        assert network.kind("sw") is NodeKind.SWITCH
        assert network.kind("a") is NodeKind.STATION
        assert network.is_switch("sw")
        assert not network.is_switch("a")

    def test_station_and_switch_listings(self):
        network = small_network()
        assert network.stations == ["a", "b", "c"]
        assert network.switches == ["sw"]
        assert network.nodes == ["a", "b", "c", "sw"]

    def test_duplicate_node_rejected(self):
        network = small_network()
        with pytest.raises(InvalidTopologyError):
            network.add_station("a")

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidTopologyError):
            Network().add_station("")

    def test_unknown_kind_lookup_rejected(self):
        with pytest.raises(InvalidTopologyError):
            small_network().kind("missing")

    def test_negative_technology_delay_rejected(self):
        with pytest.raises(InvalidTopologyError):
            Network().add_switch("sw", technology_delay=-1e-6)

    def test_technology_delay_lookup(self):
        assert small_network().technology_delay("sw") == \
            pytest.approx(units.us(16))

    def test_technology_delay_of_station_rejected(self):
        with pytest.raises(InvalidTopologyError):
            small_network().technology_delay("a")


class TestLinks:
    def test_link_attributes(self):
        link = small_network().link("a", "sw")
        assert link.capacity == units.mbps(10)
        assert link.propagation_delay == 1e-6

    def test_link_is_bidirectional_lookup(self):
        network = small_network()
        assert network.link("a", "sw") is network.link("sw", "a")

    def test_missing_link_rejected(self):
        with pytest.raises(InvalidTopologyError):
            small_network().link("a", "b")

    def test_duplicate_link_rejected(self):
        network = small_network()
        with pytest.raises(InvalidTopologyError):
            network.add_link("a", "sw", capacity=units.mbps(10))

    def test_link_to_unknown_node_rejected(self):
        network = small_network()
        with pytest.raises(InvalidTopologyError):
            network.add_link("a", "ghost", capacity=units.mbps(10))

    def test_self_link_rejected(self):
        network = Network()
        network.add_switch("sw")
        with pytest.raises(InvalidTopologyError):
            network.add_link("sw", "sw", capacity=1e6)

    def test_zero_capacity_rejected(self):
        network = small_network()
        network.add_station("d")
        with pytest.raises(InvalidTopologyError):
            network.add_link("d", "sw", capacity=0)

    def test_link_other_endpoint(self):
        link = small_network().link("a", "sw")
        assert link.other("a") == "sw"
        assert link.other("sw") == "a"
        with pytest.raises(InvalidTopologyError):
            link.other("b")

    def test_links_and_neighbors(self):
        network = small_network()
        assert len(network.links()) == 3
        assert network.neighbors("sw") == ["a", "b", "c"]
        assert network.degree("sw") == 3


class TestRouting:
    def test_station_to_station_via_switch(self):
        assert small_network().route("a", "b") == ["a", "sw", "b"]

    def test_route_unknown_node_rejected(self):
        with pytest.raises(RoutingError):
            small_network().route("a", "ghost")

    def test_route_no_path_rejected(self):
        network = small_network()
        network.add_station("island")
        with pytest.raises(RoutingError):
            network.route("a", "island")

    def test_route_flow_fills_the_path(self):
        network = small_network()
        message = Message.periodic("m", period=units.ms(20), size=100,
                                   source="a", destination="c")
        flow = network.route_flow(message)
        assert isinstance(flow, Flow)
        assert flow.path == ("a", "sw", "c")

    def test_route_flows_routes_every_flow(self):
        network = small_network()
        messages = [
            Message.periodic("m1", period=units.ms(20), size=100,
                             source="a", destination="b"),
            Message.periodic("m2", period=units.ms(20), size=100,
                             source="b", destination="c"),
        ]
        flows = network.route_flows(messages)
        assert all(flow.path for flow in flows)


class TestValidation:
    def test_valid_star_passes(self):
        small_network().validate()

    def test_empty_topology_rejected(self):
        with pytest.raises(InvalidTopologyError):
            Network().validate()

    def test_disconnected_topology_rejected(self):
        network = small_network()
        network.add_station("island")
        with pytest.raises(InvalidTopologyError):
            network.validate()

    def test_station_with_two_uplinks_rejected(self):
        network = small_network()
        network.add_switch("sw2")
        network.add_link("sw", "sw2", capacity=units.mbps(10))
        network.add_link("a", "sw2", capacity=units.mbps(10))
        with pytest.raises(InvalidTopologyError):
            network.validate()

    def test_station_to_station_link_rejected(self):
        network = Network()
        network.add_station("a")
        network.add_station("b")
        network.add_link("a", "b", capacity=units.mbps(10))
        with pytest.raises(InvalidTopologyError):
            network.validate()

    def test_access_switch(self):
        assert small_network().access_switch("a") == "sw"
