"""Property wall for the deterministic routing engine.

The routing engine's promises are structural, not numeric, so they are
tested as properties over a grid of topology families and seeds:

* every route is a **simple path** that follows declared link
  directions, with switches-only interiors (end systems never relay),
* routes are **minimal**: on small graphs an exhaustive brute-force
  enumeration of all simple paths confirms both the cost and the
  lexicographic tie-break,
* ECMP enumeration is exhaustive, ordered, and **independent of
  ``PYTHONHASHSEED``** — asserted by re-running the enumeration in
  subprocesses with different hash seeds and comparing byte output.
"""

from __future__ import annotations

import os
import subprocess
import sys
from itertools import permutations
from pathlib import Path

import pytest

from repro.errors import RoutingError
from repro.flows.flow import Flow
from repro.flows.messages import Message, MessageKind
from repro.topology.graph import (
    GraphLink,
    GraphNode,
    GraphTopologySpec,
    diamond_graph_spec,
    random_graph_spec,
    ring_graph_spec,
    star_graph_spec,
)
from repro.topology.routing import RoutingEngine, lexicographic_shortest_path

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"

#: The property grid: every family the registry and the fuzz generator
#: draw from, at a couple of sizes and seeds each.
PROPERTY_SPECS = [
    star_graph_spec(4),
    star_graph_spec(8),
    diamond_graph_spec(6),
    diamond_graph_spec(9),
    ring_graph_spec(6, switch_count=3),
    ring_graph_spec(8, switch_count=5),
    random_graph_spec(6, switch_count=4, extra_links=2, seed=0),
    random_graph_spec(8, switch_count=5, extra_links=3, seed=7),
    random_graph_spec(10, switch_count=6, extra_links=0, seed=13),
]

SPEC_IDS = [spec.name + f"-{len(spec.end_systems)}es"
            for spec in PROPERTY_SPECS]


def brute_force_paths(spec: GraphTopologySpec, source: str,
                      destination: str) -> list[tuple[str, ...]]:
    """Every simple source->destination path with switch-only interiors."""
    successors = spec.successors()
    found: list[tuple[str, ...]] = []

    def _walk(node: str, prefix: list[str]) -> None:
        if node == destination:
            found.append(tuple(prefix))
            return
        if node != source and not spec.is_switch(node):
            return
        for successor in successors.get(node, ()):
            if successor not in prefix:
                prefix.append(successor)
                _walk(successor, prefix)
                prefix.pop()

    _walk(source, [source])
    return found


def es_pairs(spec: GraphTopologySpec):
    return [(a, b) for a, b in permutations(spec.end_systems, 2)]


@pytest.mark.parametrize("spec", PROPERTY_SPECS, ids=SPEC_IDS)
class TestRouteStructure:
    def test_routes_are_simple_paths(self, spec):
        engine = RoutingEngine(spec)
        for source, destination in es_pairs(spec):
            path = engine.shortest_path(source, destination)
            assert path[0] == source and path[-1] == destination
            assert len(set(path)) == len(path), \
                f"route {path} revisits a node"

    def test_routes_follow_declared_link_directions(self, spec):
        engine = RoutingEngine(spec)
        successors = spec.successors()
        for source, destination in es_pairs(spec):
            path = engine.shortest_path(source, destination)
            for hop_source, hop_target in zip(path, path[1:]):
                assert hop_target in successors[hop_source], \
                    f"{hop_source}->{hop_target} is not a declared link"
                # The edge lookup must agree (attributes are resolvable).
                assert spec.edge(hop_source, hop_target).rate > 0

    def test_interior_nodes_are_switches(self, spec):
        engine = RoutingEngine(spec)
        for source, destination in es_pairs(spec):
            path = engine.shortest_path(source, destination)
            for interior in path[1:-1]:
                assert spec.is_switch(interior), \
                    f"end system {interior} relays on {path}"

    def test_every_ecmp_path_shares_the_minimal_cost(self, spec):
        engine = RoutingEngine(spec)
        for source, destination in es_pairs(spec):
            paths = engine.ecmp_paths(source, destination)
            best = engine.path_cost(engine.shortest_path(source,
                                                         destination))
            assert paths, "at least the shortest path must be enumerated"
            assert paths[0] == engine.shortest_path(source, destination)
            assert list(paths) == sorted(paths), \
                "ECMP enumeration must be lexicographically ordered"
            assert len(set(paths)) == len(paths)
            for path in paths:
                assert engine.path_cost(path) == best

    def test_selected_path_is_one_of_the_ecmp_set(self, spec):
        engine = RoutingEngine(spec)
        for source, destination in es_pairs(spec)[:6]:
            paths = engine.ecmp_paths(source, destination)
            chosen = engine.select_path(source, destination,
                                        key=f"{source}->{destination}")
            assert chosen in paths


@pytest.mark.parametrize("spec", PROPERTY_SPECS, ids=SPEC_IDS)
def test_brute_force_minimality_and_tie_break(spec):
    """Exhaustive check on small graphs: minimal cost, smallest-name tie.

    The engine promises the lexicographically smallest of all minimal
    -cost simple paths.  These graphs are small enough to enumerate all
    simple paths outright, so the promise is checked literally.
    """
    engine = RoutingEngine(spec)
    for source, destination in es_pairs(spec):
        candidates = brute_force_paths(spec, source, destination)
        assert candidates, f"no path {source}->{destination}"
        best = min(engine.path_cost(path) for path in candidates)
        minimal = sorted(path for path in candidates
                         if engine.path_cost(path) == best)
        assert engine.shortest_path(source, destination) == minimal[0]
        assert engine.ecmp_paths(source, destination) == tuple(minimal)


def test_latency_weight_prefers_the_faster_detour():
    """``weight="latency"`` reroutes around a slow direct link."""
    spec = GraphTopologySpec(
        name="latency-triangle",
        nodes=(GraphNode("es-a", "end-system"),
               GraphNode("es-b", "end-system"),
               GraphNode("sw-1", "switch"),
               GraphNode("sw-2", "switch"),
               GraphNode("sw-3", "switch")),
        links=(GraphLink("es-a", "sw-1", latency=1e-6),
               GraphLink("es-b", "sw-2", latency=1e-6),
               # Direct hop: one link but 100 µs of propagation.
               GraphLink("sw-1", "sw-2", latency=100e-6),
               # Detour: two links of 1 µs each.
               GraphLink("sw-1", "sw-3", latency=1e-6),
               GraphLink("sw-3", "sw-2", latency=1e-6)))
    by_hops = RoutingEngine(spec, weight="hops")
    assert by_hops.shortest_path("es-a", "es-b") == (
        "es-a", "sw-1", "sw-2", "es-b")
    by_latency = RoutingEngine(spec, weight="latency")
    assert by_latency.shortest_path("es-a", "es-b") == (
        "es-a", "sw-1", "sw-3", "sw-2", "es-b")


def test_unknown_weight_rejected():
    with pytest.raises(RoutingError, match="unknown routing weight"):
        RoutingEngine(star_graph_spec(4), weight="bandwidth")


def test_no_route_raises_routing_error():
    spec = GraphTopologySpec(
        name="two-islands",
        nodes=(GraphNode("es-a", "end-system"),
               GraphNode("es-b", "end-system"),
               GraphNode("sw-1", "switch"),
               GraphNode("sw-2", "switch")),
        links=(GraphLink("es-a", "sw-1"), GraphLink("es-b", "sw-2")))
    engine = RoutingEngine(spec)
    assert not engine.has_route("es-a", "es-b")
    with pytest.raises(RoutingError, match="no path"):
        engine.shortest_path("es-a", "es-b")
    with pytest.raises(RoutingError, match="no path"):
        engine.ecmp_paths("es-a", "es-b")
    assert engine.diagnostics() == [
        "no route from 'es-a' to 'es-b'",
        "no route from 'es-b' to 'es-a'",
    ]


def test_diagnostics_empty_on_connected_families():
    for spec in PROPERTY_SPECS:
        assert RoutingEngine(spec).diagnostics() == []


def test_end_systems_never_relay_even_when_shorter():
    """A two-port end system in the middle must not be used as a relay."""
    # sw-mid sits between sw-1 and sw-2 with es-mid attached; the bridge
    # via sw-bridge has the same hop count, so if es-mid's attachment
    # point ever counted as a shortcut the assertion below would notice.
    spec = GraphTopologySpec(
        name="tempting-relay",
        nodes=(GraphNode("es-a", "end-system"),
               GraphNode("es-b", "end-system"),
               GraphNode("es-mid", "end-system"),
               GraphNode("sw-1", "switch"),
               GraphNode("sw-2", "switch"),
               GraphNode("sw-bridge", "switch"),
               GraphNode("sw-mid", "switch")),
        links=(GraphLink("es-a", "sw-1"),
               GraphLink("es-mid", "sw-mid"),
               GraphLink("sw-1", "sw-mid"),
               GraphLink("sw-mid", "sw-2"),
               GraphLink("sw-2", "es-b"),
               GraphLink("sw-1", "sw-bridge"),
               GraphLink("sw-bridge", "sw-2")))
    engine = RoutingEngine(spec)
    path = engine.shortest_path("es-a", "es-b")
    assert "es-mid" not in path
    for interior in path[1:-1]:
        assert spec.is_switch(interior)


def test_route_flow_attaches_the_deterministic_path():
    spec = diamond_graph_spec(6)
    engine = RoutingEngine(spec)
    message = Message(name="probe", kind=MessageKind.PERIODIC,
                      period=20e-3, size=512.0,
                      source="station-00", destination="station-05")
    flow = Flow(message=message)
    routed = engine.route_flow(flow)
    assert routed.path == engine.shortest_path("station-00", "station-05")
    # An explicit path is preserved, not recomputed.
    pinned = flow.with_path(("station-00", "sw-a", "sw-c", "sw-d",
                             "station-05"))
    assert engine.route_flow(pinned).path == pinned.path


def test_diamond_tie_breaks_via_the_smaller_switch_name():
    """The canonical ECMP tie: sw-b beats sw-c lexicographically."""
    spec = diamond_graph_spec(6)
    engine = RoutingEngine(spec)
    path = engine.shortest_path("station-00", "station-05")
    assert path == ("station-00", "sw-a", "sw-b", "sw-d", "station-05")
    assert engine.ecmp_paths("station-00", "station-05") == (
        ("station-00", "sw-a", "sw-b", "sw-d", "station-05"),
        ("station-00", "sw-a", "sw-c", "sw-d", "station-05"))


def test_lexicographic_helper_handles_source_equals_destination():
    assert lexicographic_shortest_path(
        ("a",), {"a": ()}, "a", "a") == ("a",)


_HASH_SEED_SCRIPT = """\
import json
from repro.topology.graph import diamond_graph_spec, random_graph_spec
from repro.topology.routing import RoutingEngine

lines = []
for spec in (diamond_graph_spec(8),
             random_graph_spec(8, switch_count=5, extra_links=3, seed=7)):
    engine = RoutingEngine(spec)
    for source in spec.end_systems:
        for destination in spec.end_systems:
            if source == destination:
                continue
            paths = engine.ecmp_paths(source, destination)
            chosen = engine.select_path(source, destination,
                                        key=f"flow:{source}->{destination}")
            lines.append(json.dumps({
                "pair": [source, destination],
                "paths": [list(p) for p in paths],
                "chosen": list(chosen),
            }, sort_keys=True))
print("\\n".join(lines))
"""


def _routes_under_hash_seed(seed: str) -> str:
    """Run the enumeration in a fresh interpreter with one hash seed."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = str(SRC_ROOT)
    result = subprocess.run(
        [sys.executable, "-c", _HASH_SEED_SCRIPT], env=env,
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_ecmp_selection_is_independent_of_pythonhashseed():
    """Routes and ECMP choices are identical under different hash seeds.

    ``PYTHONHASHSEED`` randomises ``hash()`` and therefore set/dict
    iteration order of strings.  The engine sorts by value everywhere
    and selects ECMP members via SHA-256, so two interpreters with
    different hash seeds must print byte-identical route tables.
    """
    baseline = _routes_under_hash_seed("0")
    assert baseline.strip(), "the probe script must emit route lines"
    assert _routes_under_hash_seed("12345") == baseline
