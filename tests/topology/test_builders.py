"""Canonical topology builders."""

import pytest

from repro import units
from repro.errors import InvalidTopologyError
from repro.topology import dual_switch_topology, single_switch_star, tree_topology


class TestSingleSwitchStar:
    def test_counts(self):
        network = single_switch_star(8)
        assert len(network.stations) == 8
        assert network.switches == ["switch-0"]
        assert len(network.links()) == 8

    def test_every_station_routes_through_the_switch(self):
        network = single_switch_star(4)
        assert network.route("station-00", "station-03") == [
            "station-00", "switch-0", "station-03"]

    def test_capacity_and_technology_delay(self):
        network = single_switch_star(4, capacity=units.mbps(100),
                                     technology_delay=units.us(40))
        assert network.link("station-00", "switch-0").capacity == \
            units.mbps(100)
        assert network.technology_delay("switch-0") == pytest.approx(
            units.us(40))

    def test_default_capacity_matches_the_paper(self):
        network = single_switch_star(4)
        assert network.link("station-00", "switch-0").capacity == \
            units.mbps(10)

    def test_too_few_stations_rejected(self):
        with pytest.raises(InvalidTopologyError):
            single_switch_star(1)

    def test_result_is_validated(self):
        single_switch_star(16).validate()


class TestDualSwitch:
    def test_counts(self):
        network = dual_switch_topology(stations_per_switch=3)
        assert len(network.stations) == 6
        assert len(network.switches) == 2
        # 6 station links + 1 backbone.
        assert len(network.links()) == 7

    def test_cross_switch_route_has_two_switches(self):
        network = dual_switch_topology(stations_per_switch=2)
        route = network.route("station-00", "station-03")
        assert route == ["station-00", "switch-0", "switch-1", "station-03"]

    def test_backbone_capacity_override(self):
        network = dual_switch_topology(stations_per_switch=2,
                                       backbone_capacity=units.mbps(100))
        assert network.link("switch-0", "switch-1").capacity == \
            units.mbps(100)

    def test_invalid_count_rejected(self):
        with pytest.raises(InvalidTopologyError):
            dual_switch_topology(stations_per_switch=0)


class TestTree:
    def test_counts(self):
        network = tree_topology(leaf_switches=3, stations_per_leaf=4)
        assert len(network.stations) == 12
        assert len(network.switches) == 4  # core + 3 leaves

    def test_cross_leaf_route_goes_through_the_core(self):
        network = tree_topology(leaf_switches=2, stations_per_leaf=2)
        route = network.route("station-00", "station-02")
        assert route == ["station-00", "leaf-0", "core", "leaf-1",
                         "station-02"]

    def test_same_leaf_route_stays_local(self):
        network = tree_topology(leaf_switches=2, stations_per_leaf=2)
        assert network.route("station-00", "station-01") == [
            "station-00", "leaf-0", "station-01"]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidTopologyError):
            tree_topology(leaf_switches=0, stations_per_leaf=2)
        with pytest.raises(InvalidTopologyError):
            tree_topology(leaf_switches=2, stations_per_leaf=0)
