"""Canonical fingerprinting: stability, order-independence, sensitivity."""

import math
import subprocess
import sys
from dataclasses import dataclass
from enum import Enum
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.campaigns import builtin_scenarios
from repro.flows.priorities import PriorityClass
from repro.store import canonical, canonical_json, fingerprint

_SRC = Path(__file__).resolve().parents[2] / "src"


class Colour(Enum):
    RED = 1
    BLUE = 2


@dataclass(frozen=True)
class Point:
    x: float
    y: float


class TestCanonical:
    def test_scalars_pass_through(self):
        for value in (None, True, 0, -3, 1.5, "text"):
            assert canonical(value) == value

    def test_tuples_and_lists_are_interchangeable(self):
        assert canonical((1, 2, (3,))) == canonical([1, 2, [3]])

    def test_dict_order_is_irrelevant(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_set_order_is_irrelevant(self):
        assert canonical({3, 1, 2}) == canonical({2, 3, 1})

    def test_enums_encode_class_and_member(self):
        assert canonical(Colour.RED) != canonical(Colour.BLUE)
        assert canonical(PriorityClass.URGENT) \
            != canonical(PriorityClass.PERIODIC)

    def test_dataclasses_encode_their_fields(self):
        assert canonical(Point(1.0, 2.0)) == canonical(Point(1.0, 2.0))
        assert canonical(Point(1.0, 2.0)) != canonical(Point(2.0, 1.0))

    def test_non_canonicalisable_objects_are_rejected(self):
        with pytest.raises(TypeError):
            canonical(object())

    def test_non_finite_floats_survive(self):
        text = canonical_json({"a": math.inf, "b": math.nan})
        assert "Infinity" in text and "NaN" in text


class TestFingerprint:
    def test_is_a_sha256_hex_digest(self):
        digest = fingerprint({"x": 1})
        assert len(digest) == 64
        assert all(char in "0123456789abcdef" for char in digest)

    def test_differs_on_any_value_change(self):
        base = {"kind": "cell", "seed": 1, "scenario": "synchronized"}
        assert fingerprint(base) != fingerprint({**base, "seed": 2})
        assert fingerprint(base) != fingerprint({**base,
                                                 "scenario": "staggered"})

    def test_every_builtin_scenario_fingerprint_is_distinct(self):
        digests = {fingerprint(scenario)
                   for scenario in builtin_scenarios()}
        assert len(digests) == len(builtin_scenarios())

    def test_stable_across_process_restarts(self):
        """The digest must not depend on the process's hash seed."""
        payload = ("import sys; sys.path.insert(0, sys.argv[1]); "
                   "from repro.store import fingerprint; "
                   "from repro.campaigns import builtin_scenarios; "
                   "print(fingerprint({'scenarios': builtin_scenarios(), "
                   "'x': {'b': 2, 'a': 1}}))")
        digests = set()
        for hash_seed in ("1", "2"):
            result = subprocess.run(
                [sys.executable, "-c", payload, str(_SRC)],
                capture_output=True, text=True, check=True,
                env={"PYTHONHASHSEED": hash_seed, "PATH": "/usr/bin:/bin"})
            digests.add(result.stdout.strip())
        assert len(digests) == 1

    @given(st.recursive(
        st.none() | st.booleans() | st.integers()
        | st.floats(allow_nan=False) | st.text(),
        lambda children: st.lists(children)
        | st.dictionaries(st.text(), children),
        max_leaves=20))
    def test_property_fingerprint_is_deterministic(self, payload):
        assert fingerprint(payload) == fingerprint(payload)

    @given(st.dictionaries(st.text(min_size=1), st.integers(), min_size=2))
    def test_property_dict_insertion_order_never_matters(self, mapping):
        reversed_mapping = dict(reversed(list(mapping.items())))
        assert fingerprint(mapping) == fingerprint(reversed_mapping)
