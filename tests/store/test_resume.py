"""Resumable campaigns: interrupted runs finish byte-identically."""

from pathlib import Path

import pytest

from repro.campaigns import CampaignRunner, builtin_scenarios
from repro.reports import ReportPipeline, select_experiments
from repro.simulation.campaign import SimulationCampaign
from repro.store import ResultStore


def _campaign_csv(tmp_path: Path, name: str, runner: CampaignRunner) -> bytes:
    result = runner.run(builtin_scenarios())
    path = tmp_path / f"{name}.csv"
    result.write_csv(path)
    return path.read_bytes()


class TestCampaignResume:
    def test_interrupted_campaign_resumes_byte_identically(self, tmp_path):
        """The acceptance gate: kill mid-campaign, resume, same CSV."""
        reference = _campaign_csv(tmp_path, "reference", CampaignRunner())
        store_root = tmp_path / "store"

        # "Interrupted" run: the store keeps whatever cells finished
        # before the kill — simulate one by dropping every record past
        # the first four.
        CampaignRunner(store=ResultStore(store_root)).run(
            builtin_scenarios())
        blobs = sorted((store_root / "objects").glob("*/*.json"))
        assert len(blobs) == len(builtin_scenarios())
        for blob in blobs[4:]:
            blob.unlink()

        resumed_store = ResultStore(store_root)
        resumed = _campaign_csv(
            tmp_path, "resumed",
            CampaignRunner(store=resumed_store, resume=True))
        assert resumed == reference
        assert resumed_store.stats.hits == 4
        assert resumed_store.stats.writes \
            == len(builtin_scenarios()) - 4

    def test_rows_identical_with_and_without_store(self, tmp_path):
        plain = CampaignRunner().run(builtin_scenarios()).rows()
        store = ResultStore(tmp_path / "store")
        stored = CampaignRunner(store=store).run(builtin_scenarios()).rows()
        resumed = CampaignRunner(store=ResultStore(tmp_path / "store"),
                                 resume=True).run(builtin_scenarios())
        assert stored == plain
        assert resumed.rows() == plain
        assert resumed.resumed == len(builtin_scenarios())

    def test_without_resume_the_store_is_write_only(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        CampaignRunner(store=store).run(builtin_scenarios())
        again = ResultStore(tmp_path / "store")
        CampaignRunner(store=again).run(builtin_scenarios())
        assert again.stats.hits == 0
        assert again.stats.writes == len(builtin_scenarios())

    def test_stale_token_is_not_resumed(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        CampaignRunner(store=store).run(builtin_scenarios())
        monkeypatch.setattr("repro.store.store.code_version",
                            lambda subsystem: "bumped")
        fresh = ResultStore(tmp_path / "store")
        result = CampaignRunner(store=fresh, resume=True).run(
            builtin_scenarios())
        assert result.resumed == 0
        assert fresh.stats.misses == len(builtin_scenarios())


@pytest.fixture()
def small_grid(tmp_path):
    def factory(**kwargs):
        return SimulationCampaign(
            station_count=6, workload_seed=3, seeds=(1, 2),
            scenarios=("synchronized",), policies=("fcfs",
                                                   "strict-priority"),
            **kwargs)
    return factory


class TestSimulateResume:
    def test_interrupted_grid_resumes_byte_identically(self, tmp_path,
                                                       small_grid):
        reference = tmp_path / "reference.csv"
        small_grid().run().write_csv(reference)

        store_root = tmp_path / "store"
        small_grid(store=ResultStore(store_root)).run()
        blobs = sorted((store_root / "objects").glob("*/*.json"))
        assert len(blobs) == 4  # 2 seeds x 2 policies
        blobs[0].unlink()
        blobs[-1].unlink()

        resumed_path = tmp_path / "resumed.csv"
        campaign = small_grid(store=ResultStore(store_root), resume=True)
        result = campaign.run()
        result.write_csv(resumed_path)
        assert result.resumed == 2
        assert resumed_path.read_bytes() == reference.read_bytes()

    def test_jobs_fanout_shares_the_store(self, tmp_path, small_grid):
        store_root = tmp_path / "store"
        small_grid(store=ResultStore(store_root), jobs=2).run()
        result = small_grid(store=ResultStore(store_root), resume=True,
                            jobs=2).run()
        assert result.resumed == result.cells == 4


class TestReportStoreRuns:
    def test_warm_full_run_recomputes_nothing_and_matches(self, tmp_path):
        store_root = tmp_path / "store"
        selected = select_experiments("figure1,violations")
        cold = ReportPipeline(tmp_path / "a", experiments=selected,
                              store=ResultStore(store_root))
        cold.run()
        assert cold.last_computed == ["figure1", "violations"]
        warm = ReportPipeline(tmp_path / "b", experiments=selected,
                              store=ResultStore(store_root))
        run = warm.run()
        assert warm.last_computed == []
        assert warm.last_cached == ["figure1", "violations"]
        assert run.cached_experiments == ["figure1", "violations"]
        for relative in run.files:
            assert (tmp_path / "a" / relative).read_bytes() \
                == (tmp_path / "b" / relative).read_bytes()

    def test_check_uses_the_store_and_stays_correct(self, tmp_path):
        store_root = tmp_path / "store"
        selected = select_experiments("violations")
        target = tmp_path / "artifacts"
        pipeline = ReportPipeline(target, experiments=selected,
                                  store=ResultStore(store_root))
        pipeline.run()
        checker = ReportPipeline(target, experiments=selected,
                                 store=ResultStore(store_root))
        assert checker.check() == []
        assert checker.last_cached == ["violations"]
        # A hand edit is still caught even though the result was cached.
        table = target / "violations" / "violations.md"
        table.write_text(table.read_text() + "tampered\n")
        problems = ReportPipeline(target, experiments=selected,
                                  store=ResultStore(store_root)).check()
        assert any("stale artifact" in problem for problem in problems)

    def test_corrupt_store_record_falls_back_to_building(self, tmp_path):
        store_root = tmp_path / "store"
        selected = select_experiments("violations")
        store = ResultStore(store_root)
        ReportPipeline(tmp_path / "a", experiments=selected,
                       store=store).run()
        for blob in (store_root / "objects").glob("*/*.json"):
            blob.write_text('{"payload": {"bogus": 1}}', encoding="utf-8")
        warm = ReportPipeline(tmp_path / "b", experiments=selected,
                              store=ResultStore(store_root))
        warm.run()
        assert warm.last_computed == ["violations"]
        assert (tmp_path / "a" / "violations" / "violations.md").read_bytes() \
            == (tmp_path / "b" / "violations" / "violations.md").read_bytes()
