"""Store hardening: injected I/O faults degrade, never raise."""

import json
import logging

import pytest

from repro.exec.faults import FaultPlan, cell_context
from repro.store import ResultStore
from repro.store.store import STORE_FSYNC_ENV


@pytest.fixture()
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store")


def _put(store: ResultStore, key, value, *, faults: str = "", cell: int = 0):
    """One ``cached`` write under an (optional) active fault context."""
    with cell_context(FaultPlan.parse(faults), cell, 0, in_worker=False):
        return store.cached("kind", key, lambda: value,
                            subsystem="campaigns")


def _get(store: ResultStore, key):
    return store.cached("kind", key, lambda: "recomputed",
                        subsystem="campaigns")


class TestDegradedWrites:
    @pytest.mark.parametrize("fault", ["store-eio@0", "store-enospc@0",
                                       "store-replace@0"])
    def test_failed_write_keeps_the_computed_value(self, store, fault,
                                                   caplog):
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            value, from_store = _put(store, "k", {"n": 1}, faults=fault)
        assert value == {"n": 1}
        assert not from_store
        assert store.stats.write_errors == 1
        assert "write errors" in store.stats.describe()
        assert any("not persisted" in message
                   for message in caplog.messages)
        # Nothing was persisted: the next lookup recomputes.
        fresh = ResultStore(store.root)
        assert _get(fresh, "k")[0] == "recomputed"

    def test_failed_replace_leaves_no_temp_file_behind(self, store):
        _put(store, "k", {"n": 1}, faults="store-replace@0")
        leftovers = [path for path in store.root.rglob("*")
                     if path.is_file() and path.suffix != ".json"
                     and path.name != "index.jsonl"]
        assert leftovers == []

    def test_unwritable_root_never_raises(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where the store dir should be")
        store = ResultStore(blocked)
        value, from_store = store.cached(
            "kind", "k", lambda: 42, subsystem="campaigns")
        assert value == 42
        assert not from_store
        assert store.stats.write_errors == 1


class TestCorruptRecords:
    def test_torn_record_write_reads_back_as_a_miss(self, store):
        value, _ = _put(store, "k", {"n": 7}, faults="store-corrupt@0")
        assert value == {"n": 7}
        fresh = ResultStore(store.root)
        assert _get(fresh, "k")[0] == "recomputed"
        assert fresh.stats.corrupt_records == 1
        assert "corrupt records" in fresh.stats.describe()

    def test_hand_corrupted_record_is_a_logged_miss(self, store, caplog):
        _put(store, "k", {"n": 7})
        [blob] = store.root.glob("objects/*/*.json")
        blob.write_text("{definitely not json", encoding="utf-8")
        fresh = ResultStore(store.root)
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            value, from_store = _get(fresh, "k")
        assert value == "recomputed"
        assert fresh.stats.corrupt_records == 1
        assert any("corrupt" in message for message in caplog.messages)

    def test_gc_removes_unreadable_records(self, store):
        _put(store, "keep", 1)
        _put(store, "drop", 2)
        blobs = sorted(store.root.glob("objects/*/*.json"))
        blobs[0].write_text("torn", encoding="utf-8")
        kept, removed, _freed = store.gc()
        assert (kept, removed) == (1, 1)
        assert len(list(store.root.glob("objects/*/*.json"))) == 1


class TestTornIndex:
    def test_torn_index_line_is_skipped_and_counted(self, store):
        _put(store, "a", 1)
        _put(store, "b", 2, faults="store-index@0")
        _put(store, "c", 3)
        entries, corrupt = store.index_entries()
        assert corrupt == 1
        assert len(entries) == 2
        # The record itself survived — only its inventory line tore.
        fresh = ResultStore(store.root)
        value, from_store = fresh.cached(
            "kind", "b", lambda: "recomputed", subsystem="campaigns")
        assert value == 2
        assert from_store

    def test_hand_torn_index_is_tolerated(self, store):
        _put(store, "a", 1)
        with store.index_path.open("a", encoding="utf-8") as handle:
            handle.write('{"fingerprint": "tru\n')
            handle.write("not json at all\n")
            handle.write(json.dumps({"no_fingerprint": True}) + "\n")
        entries, corrupt = store.index_entries()
        assert len(entries) == 1
        assert corrupt == 3

    def test_gc_rebuilds_a_clean_index(self, store):
        _put(store, "a", 1, faults="store-index@0")
        store.gc()
        entries, corrupt = store.index_entries()
        assert corrupt == 0
        assert len(entries) == 1


class TestAudit:
    def test_counts_records_and_index_lines(self, store):
        _put(store, "a", 1)
        _put(store, "b", 2, faults="store-corrupt@0")
        _put(store, "c", 3, faults="store-index@0")
        audit = store.audit()
        assert audit == {"records": 3, "corrupt_records": 1,
                         "index_lines": 3, "corrupt_index_lines": 1}

    def test_empty_store(self, store):
        assert store.audit() == {"records": 0, "corrupt_records": 0,
                                 "index_lines": 0,
                                 "corrupt_index_lines": 0}


class TestFsync:
    def test_constructor_flag_round_trips(self, tmp_path):
        store = ResultStore(tmp_path / "store", fsync=True)
        assert store.fsync
        store.cached("kind", "k", lambda: {"n": 1}, subsystem="campaigns")
        value, from_store = ResultStore(tmp_path / "store").cached(
            "kind", "k", lambda: pytest.fail("must not recompute"),
            subsystem="campaigns")
        assert value == {"n": 1}
        assert from_store

    @pytest.mark.parametrize("text,expected", [
        ("1", True), ("true", True), ("ON", True),
        ("0", False), ("", False), ("off", False),
    ])
    def test_environment_opt_in(self, tmp_path, monkeypatch, text,
                                expected):
        monkeypatch.setenv(STORE_FSYNC_ENV, text)
        assert ResultStore(tmp_path / "store").fsync is expected

    def test_default_is_off(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_FSYNC_ENV, raising=False)
        assert not ResultStore(tmp_path / "store").fsync
