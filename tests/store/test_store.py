"""ResultStore: round-trips, corruption, gc/clear, concurrent writers."""

import json
import math
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.store import STORE_DIR_ENV, ResultStore


@pytest.fixture()
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store")


class TestRoundTrip:
    def test_miss_then_hit(self, store):
        value, from_store = store.cached(
            "kind", {"k": 1}, lambda: {"answer": 42}, subsystem="campaigns")
        assert value == {"answer": 42}
        assert not from_store
        value, from_store = store.cached(
            "kind", {"k": 1}, lambda: pytest.fail("must not recompute"),
            subsystem="campaigns")
        assert value == {"answer": 42}
        assert from_store
        assert store.stats.hits == 1
        assert store.stats.misses == 1
        assert store.stats.writes == 1

    def test_different_keys_do_not_collide(self, store):
        store.cached("kind", {"k": 1}, lambda: "one", subsystem="campaigns")
        value, _ = store.cached("kind", {"k": 2}, lambda: "two",
                                subsystem="campaigns")
        assert value == "two"

    def test_different_kinds_do_not_collide(self, store):
        store.cached("a", {"k": 1}, lambda: "A", subsystem="campaigns")
        value, _ = store.cached("b", {"k": 1}, lambda: "B",
                                subsystem="campaigns")
        assert value == "B"

    def test_non_finite_floats_round_trip(self, store):
        payload = {"bound": math.inf, "tightness": math.nan}
        store.cached("kind", "key", lambda: payload, subsystem="campaigns")
        value, from_store = store.cached("kind", "key", dict,
                                         subsystem="campaigns")
        assert from_store
        assert value["bound"] == math.inf
        assert math.isnan(value["tightness"])

    def test_none_payload_is_a_valid_value(self, store):
        store.cached("kind", "key", lambda: None, subsystem="campaigns")
        value, from_store = store.cached(
            "kind", "key", lambda: pytest.fail("must not recompute"),
            subsystem="campaigns")
        assert value is None
        assert from_store

    def test_float_payloads_round_trip_exactly(self, store):
        payload = [0.1 + 0.2, 1e-300, 3.141592653589793, 2.0 ** 53 + 1.0]
        store.put_payload("ab" * 32, payload, subsystem="campaigns",
                          kind="kind")
        assert store.get_payload("ab" * 32) == payload


class TestInvalidation:
    def test_code_version_bump_moves_the_fingerprint(self, store):
        first = store.fingerprint_for("kind", "key", subsystem="campaigns",
                                      token="token-1")
        second = store.fingerprint_for("kind", "key", subsystem="campaigns",
                                       token="token-2")
        assert first != second

    def test_bumped_token_recomputes_and_gc_sweeps(self, store):
        store.cached("kind", "key", lambda: "old", subsystem="campaigns",
                     token="token-1")
        value, from_store = store.cached("kind", "key", lambda: "new",
                                         subsystem="campaigns",
                                         token="token-2")
        assert value == "new"
        assert not from_store
        kept, removed, freed = store.gc({"campaigns": "token-2"})
        assert (kept, removed) == (1, 1)
        assert freed > 0
        entries = list(store.entries())
        assert len(entries) == 1
        assert entries[0].token == "token-2"

    def test_gc_drops_unknown_subsystems(self, store):
        store.cached("kind", "key", lambda: 1, subsystem="campaigns",
                     token="t")
        kept, removed, _ = store.gc({})
        assert (kept, removed) == (0, 1)

    def test_clear_removes_everything(self, store):
        for key in range(3):
            store.cached("kind", key, lambda: key, subsystem="campaigns")
        assert store.clear() == 3
        assert list(store.entries()) == []
        assert store.size_bytes() == 0
        assert not store.index_path.exists()


class TestRobustness:
    def test_corrupt_record_is_a_miss_and_is_replaced(self, store):
        digest = store.fingerprint_for("kind", "key", subsystem="campaigns")
        store.put_payload(digest, {"v": 1}, subsystem="campaigns",
                          kind="kind")
        blob = store._blob_path(digest)
        blob.write_text("{not json", encoding="utf-8")
        assert store.is_miss(store.get_payload(digest))
        assert not blob.exists()
        value, from_store = store.cached("kind", "key", lambda: {"v": 2},
                                         subsystem="campaigns")
        assert value == {"v": 2}
        assert not from_store

    def test_truncated_record_is_a_miss(self, store):
        digest = store.fingerprint_for("kind", "key", subsystem="campaigns")
        store.put_payload(digest, list(range(100)), subsystem="campaigns",
                          kind="kind")
        blob = store._blob_path(digest)
        blob.write_bytes(blob.read_bytes()[:20])
        assert store.is_miss(store.get_payload(digest))

    def test_no_temporary_files_survive_a_write(self, store):
        store.cached("kind", "key", lambda: 1, subsystem="campaigns")
        leftovers = [path for path in store.root.rglob("*.tmp")]
        assert leftovers == []

    def test_env_var_names_the_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "via-env"))
        assert ResultStore().root == tmp_path / "via-env"
        assert ResultStore(tmp_path / "explicit").root \
            == tmp_path / "explicit"

    def test_index_lines_are_valid_json(self, store):
        for key in range(5):
            store.cached("kind", key, lambda: key, subsystem="campaigns")
        lines = store.index_path.read_text().splitlines()
        assert len(lines) == 5
        for line in lines:
            record = json.loads(line)
            assert record["subsystem"] == "campaigns"


def _hammer(args: tuple[str, int]) -> int:
    """Worker: write 25 records, re-reading half of them, into one store."""
    root, worker = args
    store = ResultStore(root)
    for index in range(25):
        key = {"worker": worker % 2, "index": index}  # 2 workers collide
        store.cached("concurrent", key, lambda: {"payload": [index] * 50},
                     subsystem="campaigns", token="shared")
    return store.stats.writes


class TestConcurrentWriters:
    def test_parallel_processes_share_one_store_safely(self, tmp_path):
        root = str(tmp_path / "store")
        with ProcessPoolExecutor(max_workers=4) as pool:
            writes = list(pool.map(_hammer, [(root, w) for w in range(4)]))
        assert sum(writes) >= 50  # every distinct record written at least once
        store = ResultStore(root)
        entries = list(store.entries())
        assert len(entries) == 50  # 2 worker-groups x 25 distinct records
        # Every surviving blob parses and every index line is valid JSON.
        for entry in entries:
            payload = store.get_payload(entry.fingerprint)
            assert not store.is_miss(payload)
        for line in store.index_path.read_text().splitlines():
            json.loads(line)
        # And a warm pass over every key is all hits.
        warm = ResultStore(root)
        for worker in (0, 1):
            for index in range(25):
                _, from_store = warm.cached(
                    "concurrent", {"worker": worker, "index": index},
                    lambda: None, subsystem="campaigns", token="shared")
                assert from_store
