"""Code-version tokens: closures, invalidation scope, edit sensitivity."""

import shutil
from pathlib import Path

from repro.store import (
    SUBSYSTEMS,
    ModuleGraph,
    all_code_versions,
    code_version,
    combined_token,
)

_SRC = Path(__file__).resolve().parents[2] / "src"


class TestClosures:
    def test_campaigns_excludes_the_simulators(self):
        graph = ModuleGraph(_SRC)
        closure = graph.closure(SUBSYSTEMS["campaigns"])
        assert "repro.campaigns.runner" in closure
        assert "repro.core.multiplexer" in closure
        assert not any(module.startswith("repro.ethernet")
                       for module in closure)
        assert "repro.simulation.engine" not in closure

    def test_simulation_includes_the_event_kernel(self):
        closure = ModuleGraph(_SRC).closure(SUBSYSTEMS["simulation"])
        assert "repro.simulation.engine" in closure
        assert "repro.ethernet.network_sim" in closure

    def test_reports_cover_both_engines(self):
        graph = ModuleGraph(_SRC)
        reports = set(graph.closure(SUBSYSTEMS["reports"]))
        assert set(graph.closure(SUBSYSTEMS["campaigns"])) <= reports
        assert set(graph.closure(SUBSYSTEMS["simulation"])) <= reports

    def test_no_subsystem_follows_the_top_level_reexports(self):
        # Following repro/__init__ would collapse every closure into the
        # whole tree and defeat per-subsystem invalidation.
        graph = ModuleGraph(_SRC)
        for roots in SUBSYSTEMS.values():
            assert "repro" not in graph.closure(roots)

    def test_unknown_modules_are_ignored(self):
        graph = ModuleGraph(_SRC)
        assert graph.closure(["repro.does.not.exist"]) == []
        assert graph.module_file("numpy") is None


class TestTokens:
    def test_tokens_are_stable_within_a_tree(self):
        graph = ModuleGraph(_SRC)
        for name, roots in SUBSYSTEMS.items():
            assert graph.token(roots) == graph.token(roots)
            assert code_version(name) == code_version(name)

    def test_code_version_mixes_in_the_environment(self):
        # A numpy/python upgrade must invalidate stored results, so the
        # live token is source closure + environment, not source alone.
        from repro.store.versions import environment_token
        graph = ModuleGraph(_SRC)
        assert len(environment_token()) == 64
        for name, roots in SUBSYSTEMS.items():
            assert code_version(name) != graph.token(roots)

    def test_subsystem_tokens_differ(self):
        tokens = all_code_versions()
        assert len(set(tokens.values())) == len(tokens)

    def test_combined_token_is_a_digest_of_all(self):
        token = combined_token()
        assert len(token) == 64
        assert token not in all_code_versions().values()


class TestEditSensitivity:
    """Edit a copy of the real tree and watch exactly the right tokens move."""

    def _tokens(self, src_root: Path) -> dict[str, str]:
        graph = ModuleGraph(src_root)
        return {name: graph.token(roots)
                for name, roots in SUBSYSTEMS.items()}

    def test_editing_the_simulator_spares_the_analytic_campaigns(
            self, tmp_path):
        copy = tmp_path / "src"
        shutil.copytree(_SRC / "repro", copy / "repro")
        before = self._tokens(copy)
        engine = copy / "repro" / "simulation" / "engine.py"
        engine.write_text(engine.read_text() + "\n# edited\n")
        after = self._tokens(copy)
        assert after["simulation"] != before["simulation"]
        assert after["reports"] != before["reports"]
        assert after["campaigns"] == before["campaigns"]

    def test_editing_the_campaign_cache_spares_the_simulation(
            self, tmp_path):
        copy = tmp_path / "src"
        shutil.copytree(_SRC / "repro", copy / "repro")
        before = self._tokens(copy)
        cache = copy / "repro" / "campaigns" / "cache.py"
        cache.write_text(cache.read_text() + "\n# edited\n")
        after = self._tokens(copy)
        assert after["campaigns"] != before["campaigns"]
        assert after["reports"] != before["reports"]
        assert after["simulation"] == before["simulation"]

    def test_editing_a_shared_core_module_moves_every_token(self, tmp_path):
        copy = tmp_path / "src"
        shutil.copytree(_SRC / "repro", copy / "repro")
        before = self._tokens(copy)
        units = copy / "repro" / "units.py"
        units.write_text(units.read_text() + "\n# edited\n")
        after = self._tokens(copy)
        assert all(after[name] != before[name] for name in SUBSYSTEMS)

    def test_a_comment_only_edit_still_invalidates(self, tmp_path):
        # The store must prefer recomputation over ever being stale, so
        # tokens hash bytes, not semantics.
        copy = tmp_path / "src"
        shutil.copytree(_SRC / "repro", copy / "repro")
        before = self._tokens(copy)
        runner = copy / "repro" / "campaigns" / "runner.py"
        runner.write_text(runner.read_text() + "\n# cosmetic\n")
        assert self._tokens(copy)["campaigns"] != before["campaigns"]
