"""Unit conversion helpers."""

import math

import pytest

from repro import units


class TestTimeConversions:
    def test_milliseconds_to_seconds(self):
        assert units.ms(20) == pytest.approx(0.02)

    def test_microseconds_to_seconds(self):
        assert units.us(16) == pytest.approx(16e-6)

    def test_seconds_to_milliseconds_roundtrip(self):
        assert units.to_ms(units.ms(3)) == pytest.approx(3.0)

    def test_seconds_to_microseconds_roundtrip(self):
        assert units.to_us(units.us(12)) == pytest.approx(12.0)

    def test_millisecond_constant(self):
        assert units.MILLISECOND == 1e-3
        assert units.MICROSECOND == 1e-6


class TestSizeConversions:
    def test_bytes_to_bits(self):
        assert units.bytes_(64) == 512

    def test_kibibytes_to_bits(self):
        assert units.kib(1) == 8192

    def test_bits_to_bytes(self):
        assert units.to_bytes(512) == 64

    def test_1553_words_to_bits(self):
        assert units.words1553(32) == 512

    def test_1553_word_on_wire_is_20_bits(self):
        assert units.BITS_PER_1553_WORD_ON_WIRE == 20


class TestRateConversions:
    def test_mbps(self):
        assert units.mbps(10) == 10_000_000.0

    def test_kbps(self):
        assert units.kbps(250) == 250_000.0

    def test_gbps(self):
        assert units.gbps(1) == 1e9

    def test_to_mbps_roundtrip(self):
        assert units.to_mbps(units.mbps(100)) == pytest.approx(100.0)


class TestTransmissionTime:
    def test_one_megabit_at_ten_mbps(self):
        assert units.transmission_time(1e6, units.mbps(10)) == pytest.approx(0.1)

    def test_1553_word_at_one_mbps_is_twenty_microseconds(self):
        time = units.transmission_time(units.BITS_PER_1553_WORD_ON_WIRE,
                                       units.mbps(1))
        assert time == pytest.approx(units.us(20))

    def test_zero_size_is_zero_time(self):
        assert units.transmission_time(0, units.mbps(10)) == 0.0

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            units.transmission_time(100, 0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            units.transmission_time(100, -1)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            units.transmission_time(-1, units.mbps(10))

    def test_result_is_finite(self):
        assert math.isfinite(units.transmission_time(1e9, 1.0))
