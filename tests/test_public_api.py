"""Public-API hygiene: docstrings and ``__all__`` stay in sync.

Every sub-package advertises its public API in its ``__init__`` docstring
and ``__all__``; these tests keep that promise honest — every exported name
must import, and every package must document itself.
"""

import importlib
import pkgutil

import pytest

import repro

#: Every package and module under ``repro`` (computed once at import time).
_PACKAGES = ["repro"] + [
    f"repro.{name}" for name in (
        "analysis", "campaigns", "core", "core.netcalc", "ethernet",
        "flows", "fuzz", "milstd1553", "reporting", "reports", "shaping",
        "simulation", "store", "topology", "workloads")]


def _walk_modules() -> list[str]:
    found = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        found.append(info.name)
    return found


@pytest.mark.parametrize("package", _PACKAGES)
class TestPackageContract:
    def test_has_a_meaningful_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 40, (
            f"{package} needs a one-paragraph docstring naming its API")

    def test_declares_all(self, package):
        module = importlib.import_module(package)
        assert getattr(module, "__all__", None), (
            f"{package} must declare __all__")

    def test_every_all_name_imports(self, package):
        module = importlib.import_module(package)
        for name in module.__all__:
            assert hasattr(module, name), (
                f"{package}.__all__ lists {name!r} but the attribute "
                f"does not exist")


class TestWholeTree:
    def test_every_module_in_the_tree_imports(self):
        for name in _walk_modules():
            importlib.import_module(name)

    def test_every_module_has_a_docstring(self):
        for name in _walk_modules():
            module = importlib.import_module(name)
            assert module.__doc__ and module.__doc__.strip(), (
                f"{name} has no module docstring")

    def test_top_level_all_is_not_missing_campaign_api(self):
        for name in ("Scenario", "CampaignRunner", "builtin_scenarios",
                     "WorkloadSpec", "CampaignResult"):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_top_level_all_is_not_missing_report_api(self):
        for name in ("ExperimentSpec", "ReportPipeline", "all_experiments",
                     "register_experiment"):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_top_level_all_is_not_missing_store_api(self):
        for name in ("ResultStore",):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_top_level_all_is_not_missing_fuzz_api(self):
        for name in ("ScenarioGenerator", "FuzzCampaign", "FuzzResult"):
            assert name in repro.__all__
            assert hasattr(repro, name)
