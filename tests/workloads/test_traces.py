"""CSV export / import of message sets."""

import pytest

from repro import units
from repro.errors import InvalidWorkloadError
from repro.workloads import load_message_set_csv, save_message_set_csv


class TestRoundTrip:
    def test_roundtrip_preserves_every_field(self, tiny_message_set, tmp_path):
        path = tmp_path / "messages.csv"
        save_message_set_csv(tiny_message_set, path)
        loaded = load_message_set_csv(path)
        assert len(loaded) == len(tiny_message_set)
        for original in tiny_message_set:
            restored = loaded[original.name]
            assert restored.kind == original.kind
            assert restored.period == pytest.approx(original.period)
            assert restored.size == pytest.approx(original.size)
            assert restored.source == original.source
            assert restored.destination == original.destination
            if original.deadline is None:
                assert restored.deadline is None
            else:
                assert restored.deadline == pytest.approx(original.deadline)

    def test_roundtrip_of_the_real_case(self, real_case, tmp_path):
        path = tmp_path / "real-case.csv"
        save_message_set_csv(real_case, path)
        loaded = load_message_set_csv(path)
        assert loaded.total_burst() == pytest.approx(real_case.total_burst())
        assert loaded.total_rate() == pytest.approx(real_case.total_rate())

    def test_set_name_defaults_to_the_file_stem(self, tiny_message_set,
                                                tmp_path):
        path = tmp_path / "my-workload.csv"
        save_message_set_csv(tiny_message_set, path)
        assert load_message_set_csv(path).name == "my-workload"


class TestErrors:
    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("name,kind\nmsg,periodic\n")
        with pytest.raises(InvalidWorkloadError):
            load_message_set_csv(path)

    def test_malformed_number_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "name,kind,period_ms,size_bits,source,destination,deadline_ms\n"
            "msg,periodic,not-a-number,128,a,b,\n")
        with pytest.raises(InvalidWorkloadError):
            load_message_set_csv(path)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "name,kind,period_ms,size_bits,source,destination,deadline_ms\n"
            "msg,event-driven,20,128,a,b,\n")
        with pytest.raises(InvalidWorkloadError):
            load_message_set_csv(path)

    def test_empty_deadline_means_none(self, tmp_path):
        path = tmp_path / "ok.csv"
        path.write_text(
            "name,kind,period_ms,size_bits,source,destination,deadline_ms\n"
            "msg,sporadic,160,128,a,b,\n")
        loaded = load_message_set_csv(path)
        assert loaded["msg"].deadline is None
        assert loaded["msg"].period == pytest.approx(units.ms(160))
