"""The synthetic real-case workload generator."""

import pytest

from repro import PriorityClass, units
from repro.errors import InvalidWorkloadError
from repro.workloads import RealCaseParameters, generate_real_case


class TestStructure:
    def test_default_population(self, real_case):
        params = RealCaseParameters()
        expected_per_station = (params.periodic_per_station
                                + params.urgent_per_station
                                + params.medium_per_station
                                + params.background_per_station)
        assert len(real_case) == params.station_count * expected_per_station
        assert len(real_case.stations()) == params.station_count

    def test_period_extremes_match_the_paper(self, real_case):
        assert real_case.smallest_period() == pytest.approx(units.ms(20))
        assert real_case.largest_period() == pytest.approx(units.ms(160))

    def test_every_priority_class_is_populated(self, real_case):
        by_priority = real_case.by_priority()
        for cls in PriorityClass:
            assert by_priority[cls], cls

    def test_urgent_messages_have_the_3ms_deadline(self, real_case):
        for message in real_case.by_priority()[PriorityClass.URGENT]:
            assert message.deadline == pytest.approx(units.ms(3))
            assert message.period >= units.ms(20)

    def test_medium_sporadic_deadlines_are_in_the_paper_range(self, real_case):
        for message in real_case.by_priority()[PriorityClass.SPORADIC]:
            assert units.ms(20) <= message.deadline <= units.ms(160)

    def test_sporadic_interarrival_at_least_one_minor_frame(self, real_case):
        for message in real_case.sporadic():
            assert message.period >= units.ms(20) - 1e-12

    def test_message_sizes_are_on_the_16_bit_word_grid(self, real_case):
        for message in real_case:
            assert message.size % units.BITS_PER_1553_WORD == 0

    def test_traffic_converges_on_the_mission_computer(self, real_case):
        by_destination = real_case.by_destination()
        mission_computer = "station-00"
        assert len(by_destination[mission_computer]) >= \
            max(len(messages) for station, messages in by_destination.items()
                if station != mission_computer)


class TestCalibration:
    """The defaults must exhibit the paper's three headline properties."""

    def test_total_burst_exceeds_the_3ms_fcfs_threshold(self, real_case):
        # FCFS bound = total burst / 10 Mbps: above 3 ms needs > 30 kbits.
        assert real_case.total_burst() > 30_000

    def test_ethernet_utilization_is_low(self, real_case):
        assert real_case.utilization(units.mbps(10)) < 0.1

    def test_1553_utilization_is_high_but_below_one(self, real_case):
        utilization = real_case.total_rate() / units.mbps(1)
        assert 0.2 < utilization < 1.0


class TestDeterminism:
    def test_same_seed_same_set(self):
        first = generate_real_case(seed=7)
        second = generate_real_case(seed=7)
        assert [m.name for m in first] == [m.name for m in second]
        assert [m.size for m in first] == [m.size for m in second]
        assert [m.destination for m in first] == [m.destination for m in second]

    def test_different_seed_differs(self):
        first = generate_real_case(seed=7)
        second = generate_real_case(seed=8)
        assert [m.size for m in first] != [m.size for m in second]

    def test_custom_parameters(self):
        params = RealCaseParameters(station_count=8, periodic_per_station=3,
                                    urgent_per_station=1,
                                    medium_per_station=1,
                                    background_per_station=0)
        message_set = generate_real_case(params, seed=1)
        assert len(message_set) == 8 * 5
        assert len(message_set.stations()) == 8


class TestParameterValidation:
    def test_too_few_stations_rejected(self):
        with pytest.raises(InvalidWorkloadError):
            RealCaseParameters(station_count=2)

    def test_period_weights_must_sum_to_one(self):
        with pytest.raises(InvalidWorkloadError):
            RealCaseParameters(period_weights=(0.5, 0.5, 0.5, 0.5))

    def test_sinks_must_differ(self):
        with pytest.raises(InvalidWorkloadError):
            RealCaseParameters(mission_computer_index=1,
                               concentrator_index=1)

    def test_convergence_ratio_bounds(self):
        with pytest.raises(InvalidWorkloadError):
            RealCaseParameters(convergence_ratio=1.5)
