"""Workload sweeps."""

import pytest

from repro import units
from repro.errors import InvalidWorkloadError
from repro.workloads import (
    scale_message_sizes,
    scale_station_count,
    with_capacity_profile,
)


class TestSizeScaling:
    def test_doubling_roughly_doubles_the_burst(self, tiny_message_set):
        scaled = scale_message_sizes(tiny_message_set, 2.0)
        assert scaled.total_burst() == pytest.approx(
            2 * tiny_message_set.total_burst(), rel=0.05)

    def test_sizes_stay_on_the_word_grid(self, tiny_message_set):
        scaled = scale_message_sizes(tiny_message_set, 1.3)
        for message in scaled:
            assert message.size % units.BITS_PER_1553_WORD == 0

    def test_shrinking_never_drops_below_one_word(self, tiny_message_set):
        scaled = scale_message_sizes(tiny_message_set, 0.01)
        for message in scaled:
            assert message.size >= units.BITS_PER_1553_WORD

    def test_other_attributes_preserved(self, tiny_message_set):
        scaled = scale_message_sizes(tiny_message_set, 2.0)
        assert [m.name for m in scaled] == [m.name for m in tiny_message_set]
        assert [m.period for m in scaled] == [m.period
                                              for m in tiny_message_set]

    def test_invalid_factor_rejected(self, tiny_message_set):
        with pytest.raises(InvalidWorkloadError):
            scale_message_sizes(tiny_message_set, 0.0)


class TestStationScaling:
    def test_replication_multiplies_messages_and_stations(self, tiny_message_set):
        scaled = scale_station_count(tiny_message_set, 3)
        assert len(scaled) == 3 * len(tiny_message_set)
        assert len(scaled.stations()) == 3 * len(tiny_message_set.stations())

    def test_replica_one_is_identity(self, tiny_message_set):
        assert scale_station_count(tiny_message_set, 1) is tiny_message_set

    def test_replicas_do_not_collide(self, tiny_message_set):
        scaled = scale_station_count(tiny_message_set, 2)
        names = [m.name for m in scaled]
        assert len(set(names)) == len(names)

    def test_invalid_replication_rejected(self, tiny_message_set):
        with pytest.raises(InvalidWorkloadError):
            scale_station_count(tiny_message_set, 0)


class TestCapacityProfiles:
    def test_paper_profile(self):
        profile = with_capacity_profile("ethernet-10")
        assert profile.capacity == units.mbps(10)
        assert profile.technology_delay == pytest.approx(units.us(16))

    def test_fast_ethernet_profile(self):
        assert with_capacity_profile("fast-ethernet-100").capacity == \
            units.mbps(100)

    def test_1553_profile(self):
        assert with_capacity_profile("mil-std-1553b").capacity == units.mbps(1)

    def test_unknown_profile_rejected(self):
        with pytest.raises(InvalidWorkloadError):
            with_capacity_profile("token-ring")
