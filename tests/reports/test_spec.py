"""The experiment registry and its spec types."""

import pytest

from repro.errors import DuplicateExperimentError, UnknownExperimentError
from repro.reports import (
    ClaimCheck,
    ExperimentResult,
    ExperimentSpec,
    TableArtifact,
    all_experiments,
    experiment_names,
    get_experiment,
    register_experiment,
    select_experiments,
)
from repro.reports.spec import _REGISTRY


def _dummy_build() -> ExperimentResult:
    return ExperimentResult(tables=[TableArtifact(
        name="t", title="T", headers=("a",), display_rows=(("1",),))])


@pytest.fixture
def scratch_registry():
    """Snapshot the registry, hand out a spec factory, restore afterwards."""
    saved = dict(_REGISTRY)
    try:
        yield lambda name: ExperimentSpec(
            name=name, title=name, description=f"{name} spec",
            build=_dummy_build)
    finally:
        _REGISTRY.clear()
        _REGISTRY.update(saved)


class TestRegistry:
    def test_builtins_are_registered_in_order(self):
        names = experiment_names()
        assert names[:3] == ["figure1", "violations", "baseline-1553"]
        assert len(names) >= 10
        assert names == [spec.name for spec in all_experiments()]

    def test_get_by_name(self):
        spec = get_experiment("figure1")
        assert spec.exhibit == "E1 / Figure 1"

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownExperimentError, match="no-such"):
            get_experiment("no-such")

    def test_duplicate_registration_rejected(self, scratch_registry):
        register_experiment(scratch_registry("dup"))
        with pytest.raises(DuplicateExperimentError):
            register_experiment(scratch_registry("dup"))

    def test_replace_allows_overwrite(self, scratch_registry):
        register_experiment(scratch_registry("dup"))
        replacement = scratch_registry("dup")
        assert register_experiment(replacement,
                                   replace=True) is replacement
        assert get_experiment("dup") is replacement

    def test_empty_name_rejected(self, scratch_registry):
        with pytest.raises(UnknownExperimentError):
            scratch_registry("")


class TestSelectExperiments:
    def test_none_and_all_select_everything(self):
        everything = all_experiments()
        assert select_experiments(None) == everything
        assert select_experiments("all") == everything

    def test_comma_list_preserves_order(self):
        selected = select_experiments("scalability,figure1")
        assert [spec.name for spec in selected] == ["scalability",
                                                    "figure1"]

    def test_unknown_selection_raises(self):
        with pytest.raises(UnknownExperimentError):
            select_experiments("figure1,nope")


class TestClaimCheck:
    def test_badges(self):
        assert "reproduced" in ClaimCheck("c", True).badge
        assert "NOT" in ClaimCheck("c", False).badge
        assert "NOT" not in ClaimCheck("c", True).badge


class TestTableArtifact:
    def test_csv_falls_back_to_display_rows(self):
        table = TableArtifact(name="t", title="T", headers=("a",),
                              display_rows=(("1",),))
        assert table.csv_content() == (("a",), (("1",),))

    def test_csv_uses_raw_rows_when_given(self):
        table = TableArtifact(name="t", title="T", headers=("a",),
                              display_rows=(("1 ms",),),
                              raw_headers=("a_ms",), raw_rows=((1.0,),))
        assert table.csv_content() == (("a_ms",), ((1.0,),))
