"""The report pipeline: artifact tree, REPORT.md stitching, drift gate."""

import json

import pytest

from repro.reports import (
    ExperimentResult,
    ExperimentSpec,
    ReportPipeline,
    TableArtifact,
    all_experiments,
    select_experiments,
)
from repro.reports.pipeline import heading_slug


def _adhoc_build() -> ExperimentResult:
    """Module-level so the pool can pickle it by reference."""
    return ExperimentResult(tables=[TableArtifact(
        name="t", title="T", headers=("a",), display_rows=(("1",),))])


@pytest.fixture(scope="module")
def full_run(tmp_path_factory):
    """One full pipeline run shared by the read-only assertions."""
    root = tmp_path_factory.mktemp("artifacts")
    pipeline = ReportPipeline(root)
    return pipeline, pipeline.run(), root


class TestFullRun:
    def test_every_experiment_gets_a_directory(self, full_run):
        _, run, root = full_run
        for spec in all_experiments():
            assert (root / spec.name).is_dir()
            assert any((root / spec.name).iterdir())
        assert sorted(run.experiments) == sorted(
            spec.name for spec in all_experiments())

    def test_tables_render_as_markdown_and_csv(self, full_run):
        _, _, root = full_run
        assert (root / "figure1" / "bounds.md").is_file()
        assert (root / "figure1" / "bounds.csv").is_file()
        markdown = (root / "figure1" / "bounds.md").read_text()
        assert markdown.startswith("### ")
        assert "| --- |" in markdown

    def test_figures_render_as_svg_and_text(self, full_run):
        _, _, root = full_run
        svg = (root / "figure1" / "bounds.svg").read_text()
        assert svg.startswith("<svg ")
        assert (root / "figure1" / "bounds.txt").read_text().strip()

    def test_report_badges_the_headline_claims(self, full_run):
        _, run, root = full_run
        report = (root / "REPORT.md").read_text()
        assert "## Headline claims" in report
        assert report.count("✅ reproduced") >= len(run.claims)
        assert "❌" not in report
        assert len(run.headline_claims) == 4

    def test_report_section_anchors_match_the_index_links(self, full_run):
        _, _, root = full_run
        report = (root / "REPORT.md").read_text()
        for spec in all_experiments():
            anchor = heading_slug(f"{spec.name}: {spec.title}")
            assert f"(#{anchor})" in report
            assert f"## {spec.name}: {spec.title}" in report

    def test_values_json_is_namespaced_and_sorted(self, full_run):
        _, _, root = full_run
        values = json.loads((root / "values.json").read_text())
        assert list(values) == sorted(values)
        assert values["report.experiment-count"] == str(
            len(all_experiments()))
        assert "figure1.fcfs-bound" in values

    def test_run_files_inventory_matches_the_tree(self, full_run):
        _, run, root = full_run
        on_disk = sorted(path.relative_to(root).as_posix()
                         for path in root.rglob("*") if path.is_file())
        assert on_disk == sorted(run.files)

    def test_summary_counts_experiments_and_claims(self, full_run):
        _, run, _ = full_run
        assert f"{len(run.experiments)} experiments" in run.summary()
        assert "4/4 headline" in run.summary()


class TestDriftGate:
    def test_check_passes_right_after_a_run(self, full_run):
        pipeline, _, _ = full_run
        assert pipeline.check() == []

    def test_hand_edit_is_caught(self, tmp_path):
        pipeline = ReportPipeline(
            tmp_path, experiments=select_experiments("figure1"))
        pipeline.run()
        target = tmp_path / "figure1" / "bounds.md"
        target.write_text(target.read_text().replace("3.000", "2.718"))
        problems = pipeline.check()
        assert any("figure1/bounds.md" in problem for problem in problems)
        assert any("stale" in problem for problem in problems)

    def test_missing_artifact_is_caught(self, tmp_path):
        pipeline = ReportPipeline(
            tmp_path, experiments=select_experiments("figure1"))
        pipeline.run()
        (tmp_path / "figure1" / "bounds.csv").unlink()
        assert any("missing" in problem for problem in pipeline.check())

    def test_unexpected_file_is_caught_by_a_full_check(self, full_run,
                                                       tmp_path):
        pipeline, _, root = full_run
        stray = root / "figure1" / "stray.md"
        stray.write_text("left behind\n")
        try:
            assert any("unexpected" in problem
                       for problem in pipeline.check())
        finally:
            stray.unlink()


class TestPartialRuns:
    def test_partial_run_only_touches_its_experiments(self, tmp_path):
        pipeline = ReportPipeline(
            tmp_path, experiments=select_experiments("figure1,violations"))
        run = pipeline.run()
        assert sorted(run.experiments) == ["figure1", "violations"]
        assert not (tmp_path / "REPORT.md").exists()
        assert not (tmp_path / "values.json").exists()

    def test_full_run_cleans_stale_files_of_a_previous_run(self, tmp_path):
        # Simulate a previous run whose layout had an experiment that has
        # since been renamed: its file is in the manifest inventory, so
        # the next full run sweeps it and prunes the emptied directory.
        ReportPipeline(tmp_path).run()
        stale = tmp_path / "renamed-experiment" / "old.md"
        stale.parent.mkdir(parents=True)
        stale.write_text("from a previous layout\n")
        manifest = tmp_path / ".manifest"
        manifest.write_text(manifest.read_text()
                            + "renamed-experiment/old.md\n")
        ReportPipeline(tmp_path).run()
        assert not stale.exists()
        assert not stale.parent.exists()

    def test_runs_never_sweep_files_they_did_not_write(self, tmp_path):
        # Unrelated user data in the output directory survives any number
        # of full runs: only manifest-listed files may be deleted.
        precious = tmp_path / "precious.txt"
        nested = tmp_path / "figure1" / "notes.txt"
        precious.write_text("user data\n")
        ReportPipeline(tmp_path).run()
        nested.write_text("user notes inside an experiment dir\n")
        ReportPipeline(tmp_path).run()
        assert precious.read_text() == "user data\n"
        assert nested.read_text() == "user notes inside an experiment dir\n"
        assert (tmp_path / "REPORT.md").is_file()


class TestJobs:
    def test_parallel_build_matches_the_serial_tree(self, full_run,
                                                    tmp_path):
        _, serial_run, serial_root = full_run
        parallel = ReportPipeline(tmp_path)
        parallel_run = parallel.run(jobs=2)
        assert parallel_run.files == serial_run.files
        for relative in parallel_run.files:
            assert ((tmp_path / relative).read_bytes()
                    == (serial_root / relative).read_bytes()), relative

    def test_invalid_jobs_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ReportPipeline(tmp_path).build_results(jobs=0)

    def test_unregistered_adhoc_specs_build_under_jobs(self, tmp_path):
        # Workers receive the build callable, not a name to resolve in
        # their own registry, so ad-hoc specs work with jobs > 1.
        specs = [ExperimentSpec(name=f"adhoc-{index}", title="Ad hoc",
                                description="never registered",
                                build=_adhoc_build)
                 for index in range(2)]
        run = ReportPipeline(tmp_path, experiments=specs).run(jobs=2)
        assert run.experiments == ["adhoc-0", "adhoc-1"]
        assert (tmp_path / "adhoc-0" / "t.md").is_file()
