"""The builtin experiment catalogue builds valid, deterministic results."""

import math

import pytest

from repro.reports import all_experiments, get_experiment


@pytest.fixture(scope="module")
def built_catalogue():
    """Every builtin experiment built once for the whole module."""
    return {spec.name: spec.build() for spec in all_experiments()}


class TestCatalogueShape:
    def test_every_paper_exhibit_is_covered(self):
        exhibits = {spec.exhibit for spec in all_experiments()}
        for exhibit in ("E1 / Figure 1", "E2", "E3", "E4", "E5", "E6"):
            assert exhibit in exhibits

    def test_beyond_paper_studies_are_covered(self):
        names = {spec.name for spec in all_experiments()}
        assert {"sensitivity", "scalability", "buffers",
                "campaign"} <= names

    def test_every_experiment_produces_at_least_one_table(
            self, built_catalogue):
        for name, result in built_catalogue.items():
            assert result.tables, f"{name} produced no table"

    def test_every_table_row_matches_its_headers(self, built_catalogue):
        for name, result in built_catalogue.items():
            for table in result.tables:
                for row in table.display_rows:
                    assert len(row) == len(table.headers), (
                        f"{name}/{table.name}")
                headers, rows = table.csv_content()
                for row in rows:
                    assert len(row) == len(headers), f"{name}/{table.name}"

    def test_every_figure_is_well_formed(self, built_catalogue):
        for name, result in built_catalogue.items():
            for figure in result.figures:
                assert len(figure.labels) == len(figure.values), (
                    f"{name}/{figure.name}")
                for index, value in figure.markers:
                    assert 0 <= index < len(figure.labels)
                    assert not math.isnan(value)

    def test_artifact_stems_are_unique_per_experiment(self,
                                                      built_catalogue):
        # Tables and figures use disjoint extensions (.md/.csv vs
        # .svg/.txt), so stems only need to be unique within each kind.
        for name, result in built_catalogue.items():
            table_stems = [t.name for t in result.tables]
            figure_stems = [f.name for f in result.figures]
            assert len(table_stems) == len(set(table_stems)), name
            assert len(figure_stems) == len(set(figure_stems)), name


class TestHeadlineClaims:
    def test_the_headline_claims_are_reproduced(self, built_catalogue):
        # The paper's three banner results, plus the serve experiment's
        # restatement of the zero-headroom finding as admission control.
        headline = [claim for result in built_catalogue.values()
                    for claim in result.claims if claim.headline]
        assert len(headline) == 4
        assert all(claim.passed for claim in headline), [
            claim.claim for claim in headline if not claim.passed]

    def test_all_claims_pass_on_the_seeded_workload(self, built_catalogue):
        failing = [(name, claim.claim)
                   for name, result in built_catalogue.items()
                   for claim in result.claims if not claim.passed]
        assert failing == []


class TestValues:
    def test_figure1_exports_its_headline_numbers(self, built_catalogue):
        values = built_catalogue["figure1"].values
        assert values["urgent-deadline"] == "3.000 ms"
        assert values["fcfs-bound"].endswith(" ms")

    def test_campaign_counts_match_the_scenario_registry(
            self, built_catalogue):
        from repro.campaigns import builtin_scenarios
        values = built_catalogue["campaign"].values
        assert values["scenario-count"] == str(len(builtin_scenarios()))


class TestDeterminism:
    @pytest.mark.parametrize("name", ["figure1", "scalability", "campaign"])
    def test_rebuilding_reproduces_identical_results(self, name,
                                                     built_catalogue):
        assert get_experiment(name).build() == built_catalogue[name]
