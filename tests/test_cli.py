"""Command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import COMMANDS, build_parser, main

EXAMPLE_TOPOLOGY = Path(__file__).resolve().parents[1] / \
    "examples" / "topologies" / "diamond.json"

#: Arguments completing each command for an end-to-end run on a small
#: workload; ``None`` marks commands needing per-test extras (export).
WORKLOAD_ARGS = ["--stations", "6", "--seed", "3"]


#: Extra arguments completing the commands whose subparser has required
#: arguments of its own.
_REQUIRED_EXTRAS = {"export": ["--output", "x.csv"], "store": ["stats"],
                    "topology": ["validate", "t.json"]}


class TestParser:
    def test_every_command_is_registered(self):
        parser = build_parser()
        for command in ("figure1", "violations", "baseline-1553", "compare",
                        "validate", "jitter", "buffers", "export",
                        "campaign", "simulate", "fuzz", "topology",
                        "report", "store", "serve"):
            args = parser.parse_args(
                [command] + _REQUIRED_EXTRAS.get(command, []))
            assert args.command == command

    def test_the_dispatch_table_drives_the_parser(self):
        assert [spec.name for spec in COMMANDS] == [
            "figure1", "violations", "baseline-1553", "compare", "validate",
            "jitter", "buffers", "export", "campaign", "simulate", "fuzz",
            "topology", "report", "store", "serve"]

    def test_missing_command_is_an_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_shared_exec_flags_reach_every_batch_command(self):
        """The parent parsers give campaign/simulate/fuzz/report/serve
        identical execution flags without copy-pasted blocks."""
        parser = build_parser()
        for command, extras in (("campaign", []), ("simulate", []),
                                ("fuzz", []), ("report", []), ("serve", [])):
            args = parser.parse_args(
                [command, *extras, "--retries", "5", "--timeout", "1.5",
                 "--faults", "exc@3", "--no-store"])
            assert args.retries == 5
            assert args.timeout == 1.5
            assert args.faults == "exc@3"
            assert args.no_store is True

    def test_version_prints_package_version_and_store_key(self, capsys):
        from repro import __version__
        from repro.store import combined_token
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        assert f"repro {__version__}" in output
        assert f"store key {combined_token()}" in output


class TestEveryCommandEndToEnd:
    """Each subcommand runs on the synthetic case study and prints a table."""

    @pytest.mark.parametrize("command", [
        spec.name for spec in COMMANDS
        # export needs --output; serve is a long-lived server and has its
        # own end-to-end suite in tests/test_serve_server.py.
        if spec.name not in ("export", "serve")])
    def test_command_exits_zero_with_output(self, command, capsys, tmp_path):
        argv = WORKLOAD_ARGS + [command]
        if command == "campaign":
            argv = ["campaign", "--run", "paper-real-case"]
        elif command == "report":
            argv = ["report", "--experiment", "figure1",
                    "--output", str(tmp_path / "artifacts")]
        elif command == "fuzz":
            argv = ["fuzz", "--count", "2", "--no-store", "--no-corpus"]
        elif command == "store":
            argv = ["store", "stats", "--store", str(tmp_path / "store")]
        elif command == "topology":
            argv = ["topology", "validate", str(EXAMPLE_TOPOLOGY)]
        exit_code = main(argv)
        output = capsys.readouterr().out
        assert exit_code == 0
        assert output.strip()

    def test_export_writes_the_message_set(self, tmp_path, capsys):
        target = tmp_path / "set.csv"
        assert main(WORKLOAD_ARGS + ["export", "--output",
                                     str(target)]) == 0
        assert target.exists()
        assert "wrote" in capsys.readouterr().out


class TestCampaignCommand:
    def test_list_shows_at_least_eight_scenarios(self, capsys):
        assert main(["campaign", "--list"]) == 0
        output = capsys.readouterr().out
        assert "Registered scenarios" in output
        for name in ("paper-real-case", "overload", "scalability-x8"):
            assert name in output

    def test_bare_campaign_defaults_to_the_listing(self, capsys):
        assert main(["campaign"]) == 0
        assert "Registered scenarios" in capsys.readouterr().out

    def test_run_all_prints_the_combined_tables(self, capsys):
        assert main(["campaign", "--run", "all"]) == 0
        output = capsys.readouterr().out
        assert "Campaign summary" in output
        assert "Per-class worst-case bounds" in output
        assert "scalability-x8" in output and "overload" in output
        assert "(memoized)" in output

    def test_run_by_tag_and_naive_mode(self, capsys):
        assert main(["campaign", "--run", "ladder", "--naive"]) == 0
        output = capsys.readouterr().out
        assert "(naive)" in output
        assert "scalability-x2" in output

    def test_markdown_rendering(self, capsys):
        assert main(["campaign", "--run", "paper-real-case",
                     "--markdown"]) == 0
        assert "### Campaign summary" in capsys.readouterr().out

    def test_csv_export(self, tmp_path, capsys):
        target = tmp_path / "rows.csv"
        assert main(["campaign", "--run", "paper-real-case", "--csv",
                     str(target)]) == 0
        assert target.exists()
        assert target.read_text().startswith("scenario,policy,priority")

    def test_unknown_scenario_fails_with_a_message(self, capsys):
        assert main(["campaign", "--run", "no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_workload_flags_are_flagged_as_ignored(self, capsys):
        assert main(["--stations", "8", "campaign", "--run",
                     "paper-real-case"]) == 0
        err = capsys.readouterr().err
        assert "ignoring --stations" in err

    def test_no_warning_with_default_flags(self, capsys):
        assert main(["campaign", "--list"]) == 0
        assert capsys.readouterr().err == ""


class TestEngineFlag:
    """The shared ``--engine`` parent parser across the batch commands."""

    def test_every_batch_command_accepts_the_flag(self):
        parser = build_parser()
        for command in ("campaign", "simulate", "fuzz", "report", "serve"):
            args = parser.parse_args([command, "--engine", "all"])
            assert args.engine == "all"

    def test_version_reports_the_active_engine_and_token(self, capsys):
        from repro.store import code_version
        with pytest.raises(SystemExit):
            main(["--version"])
        output = capsys.readouterr().out
        assert "engine calculus" in output
        assert "calculus, holistic, trajectory" in output
        assert f"engines token {code_version('engines')}" in output

    def test_campaign_engine_all_adds_the_cross_engine_table(self, capsys):
        assert main(["campaign", "--run", "paper-real-case", "--no-store",
                     "--engine", "all"]) == 0
        output = capsys.readouterr().out
        assert "Cross-engine bounds" in output
        assert "holistic" in output and "trajectory" in output

    def test_default_campaign_output_has_no_engine_table(self, capsys):
        assert main(["campaign", "--run", "paper-real-case",
                     "--no-store"]) == 0
        assert "Cross-engine bounds" not in capsys.readouterr().out

    def test_fuzz_engine_all_validates_every_engine(self, capsys):
        assert main(["fuzz", "--count", "2", "--no-store", "--no-corpus",
                     "--engine", "all"]) == 0
        output = capsys.readouterr().out
        assert "engines: calculus, holistic, trajectory" in output

    @pytest.mark.parametrize("command", ["campaign", "simulate", "fuzz",
                                         "report", "serve"])
    def test_unknown_engine_exits_two_with_one_error_line(self, command,
                                                          capsys):
        assert main([command, "--engine", "bogus"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "unknown engine 'bogus'" in err

    def test_serve_only_supports_the_calculus_engine(self, capsys):
        assert main(["serve", "--engine", "holistic"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "calculus" in err


class TestCommands:
    def test_figure1_prints_the_table_and_succeeds(self, capsys):
        exit_code = main(["--stations", "8", "--seed", "3", "figure1"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Delay bounds for the two approaches" in output
        assert "P0 urgent sporadic" in output

    def test_violations_command(self, capsys):
        exit_code = main(["--stations", "8", "--seed", "3", "violations"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "10 Mbps" in output and "100 Mbps" in output

    def test_compare_command(self, capsys):
        exit_code = main(["--stations", "8", "--seed", "3", "compare"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "1553B" in output

    def test_validate_command_reports_holding_bounds(self, capsys):
        exit_code = main(["--stations", "6", "--seed", "3", "validate"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "strict-priority" in output

    def test_export_then_reuse_as_workload(self, tmp_path, capsys):
        target = tmp_path / "exported.csv"
        assert main(["--stations", "6", "--seed", "3", "export",
                     "--output", str(target)]) == 0
        assert target.exists()
        exit_code = main(["--workload", str(target), "figure1"])
        assert exit_code == 0
        assert "Delay bounds" in capsys.readouterr().out

    def test_capacity_override_changes_the_result(self, capsys):
        main(["--stations", "8", "--seed", "3",
              "--capacity-mbps", "100", "figure1"])
        fast_output = capsys.readouterr().out
        main(["--stations", "8", "--seed", "3", "figure1"])
        slow_output = capsys.readouterr().out
        assert fast_output != slow_output


class TestTopologyCommand:
    """``repro topology validate``: the lint path and its negatives."""

    def test_valid_file_prints_the_summary(self, capsys):
        assert main(["topology", "validate", str(EXAMPLE_TOPOLOGY)]) == 0
        output = capsys.readouterr().out
        assert "example-diamond" in output
        assert "fingerprint" in output
        assert "longest route" in output

    def test_csv_topology_validates_too(self, tmp_path, capsys):
        path = tmp_path / "net.csv"
        path.write_text("ES,station-00\nES,station-01\nSW,sw-1\n"
                        "LINK,l0,station-00,0,sw-1,1\n"
                        "LINK,l1,station-01,0,sw-1,2\n")
        assert main(["topology", "validate", str(path)]) == 0
        assert "2 end systems" in capsys.readouterr().out

    def _expect_error(self, argv, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err.strip()
        assert err.startswith("error:"), err
        assert "\n" not in err, f"expected a one-line error, got: {err!r}"
        return err

    def test_malformed_json_is_a_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        err = self._expect_error(
            ["topology", "validate", str(path)], capsys)
        assert "not a valid JSON document" in err

    def test_unknown_keys_are_a_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps(
            {"name": "odd", "nodes": [], "links": [], "routing": "ospf"}))
        err = self._expect_error(
            ["topology", "validate", str(path)], capsys)
        assert "unknown keys" in err

    def test_cyclic_link_is_a_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "loop.json"
        path.write_text(json.dumps(
            {"name": "loop",
             "nodes": [{"name": "es-a", "kind": "end-system"},
                       {"name": "sw", "kind": "switch"}],
             "links": [{"source": "es-a", "target": "sw"},
                       {"source": "sw", "target": "sw"}]}))
        err = self._expect_error(
            ["topology", "validate", str(path)], capsys)
        assert "cyclic link: 'sw' connects to itself" in err

    def test_disconnected_topology_is_a_one_line_error(
            self, tmp_path, capsys):
        path = tmp_path / "islands.json"
        path.write_text(json.dumps(
            {"name": "islands",
             "nodes": [{"name": "es-a", "kind": "end-system"},
                       {"name": "es-b", "kind": "end-system"},
                       {"name": "sw-1", "kind": "switch"},
                       {"name": "sw-2", "kind": "switch"}],
             "links": [{"source": "es-a", "target": "sw-1"},
                       {"source": "es-b", "target": "sw-2"}]}))
        err = self._expect_error(
            ["topology", "validate", str(path)], capsys)
        assert "disconnected" in err

    def test_missing_file_is_a_one_line_error(self, tmp_path, capsys):
        err = self._expect_error(
            ["topology", "validate", str(tmp_path / "absent.json")],
            capsys)
        assert "absent.json" in err

    def test_unknown_extension_is_a_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "net.yaml"
        path.write_text("nodes: []\n")
        err = self._expect_error(
            ["topology", "validate", str(path)], capsys)
        assert "unknown topology format" in err


class TestSimulateGraphTopologies:
    """``repro simulate --topology``: families, files, and mismatches."""

    def test_family_name_runs_the_graph_scenario(self, capsys):
        assert main(["--stations", "6", "--seed", "3", "simulate",
                     "--topology", "diamond", "--no-store"]) == 0
        output = capsys.readouterr().out
        assert output.strip()

    def test_topology_file_runs_when_stations_match(self, capsys):
        assert main(["--stations", "8", "--seed", "3", "simulate",
                     "--topology", str(EXAMPLE_TOPOLOGY),
                     "--no-store"]) == 0
        assert capsys.readouterr().out.strip()

    def test_station_count_mismatch_is_a_clean_error(self, capsys):
        assert main(["--stations", "6", "--seed", "3", "simulate",
                     "--topology", str(EXAMPLE_TOPOLOGY),
                     "--no-store"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "8 end systems" in err

    def test_topology_conflicts_with_workload_file(self, tmp_path, capsys):
        workload = tmp_path / "set.csv"
        assert main(WORKLOAD_ARGS + ["export", "--output",
                                     str(workload)]) == 0
        capsys.readouterr()
        assert main(["--workload", str(workload), "simulate",
                     "--topology", "diamond", "--no-store"]) == 2
        assert "error:" in capsys.readouterr().err


class TestReportCommand:
    def test_list_shows_the_experiment_catalogue(self, capsys):
        assert main(["report", "--list"]) == 0
        output = capsys.readouterr().out
        assert "Registered experiments" in output
        for name in ("figure1", "baseline-1553", "campaign"):
            assert name in output

    def test_partial_run_writes_artifacts_and_warns(self, tmp_path, capsys):
        target = tmp_path / "artifacts"
        assert main(["report", "--experiment", "figure1", "--output",
                     str(target)]) == 0
        output = capsys.readouterr().out
        assert (target / "figure1" / "bounds.md").is_file()
        assert "partial run" in output

    def test_check_fails_on_a_hand_edit(self, tmp_path, capsys):
        target = tmp_path / "artifacts"
        assert main(["report", "--experiment", "violations", "--output",
                     str(target)]) == 0
        capsys.readouterr()
        table = target / "violations" / "violations.md"
        table.write_text(table.read_text() + "tampered\n")
        assert main(["report", "--experiment", "violations", "--check",
                     "--output", str(target)]) == 1
        assert "stale artifact" in capsys.readouterr().err

    def test_check_passes_right_after_a_run(self, tmp_path, capsys):
        target = tmp_path / "artifacts"
        assert main(["report", "--experiment", "violations", "--output",
                     str(target)]) == 0
        assert main(["report", "--experiment", "violations", "--check",
                     "--output", str(target)]) == 0
        assert "report-check: OK" in capsys.readouterr().out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["report", "--experiment", "no-such"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_invalid_job_count_fails_cleanly(self, capsys):
        assert main(["report", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_committed_artifacts_match_the_code(self):
        # The acceptance gate: the committed artifacts/ tree is exactly
        # what the code generates today.
        from pathlib import Path
        committed = Path(__file__).resolve().parents[1] / "artifacts"
        assert main(["report", "--check", "--output", str(committed)]) == 0


class TestCampaignJobs:
    def test_parallel_jobs_run_and_report_the_mode(self, capsys):
        assert main(["campaign", "--run", "ladder", "--jobs", "2"]) == 0
        output = capsys.readouterr().out
        assert "(memoized, 2 jobs)" in output
        assert "scalability-x8" in output

    def test_invalid_job_count_fails_cleanly(self, capsys):
        assert main(["campaign", "--run", "ladder", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err


class TestErrorPaths:
    """Every subcommand fails with a one-line error, never a traceback."""

    MISSING = "/no/such/workload.csv"

    @pytest.mark.parametrize("command", [
        spec.name for spec in COMMANDS if spec.needs_workload])
    def test_missing_workload_is_a_one_line_error(self, command, capsys):
        argv = ["--workload", self.MISSING, command]
        if command == "export":
            argv += ["--output", "x.csv"]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_invalid_station_count_is_a_one_line_error(self, capsys):
        assert main(["--stations", "2", "figure1"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "station" in err

    @pytest.mark.parametrize("argv", [
        ["campaign", "--run", "no-such-scenario"],
        ["campaign", "--run", "ladder", "--jobs", "0"],
        ["simulate", "--scenarios", "warp"],
        ["simulate", "--size-factors", "two"],
        ["simulate", "--seeds", "0"],
        ["fuzz", "--count", "0", "--no-store", "--no-corpus"],
        ["fuzz", "--seed", "-1", "--no-store", "--no-corpus"],
        ["fuzz", "--jobs", "0", "--no-store", "--no-corpus"],
        ["report", "--experiment", "no-such"],
        ["report", "--jobs", "0"],
    ])
    def test_bad_subcommand_arguments_fail_cleanly(self, argv, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "error" in err
        assert "Traceback" not in err

    def test_bad_store_action_is_rejected_by_the_parser(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["store", "frobnicate"])
        assert excinfo.value.code == 2

    def test_unwritable_export_path_is_a_one_line_error(self, capsys):
        assert main(WORKLOAD_ARGS + [
            "export", "--output", "/no/such/dir/set.csv"]) == 2
        assert capsys.readouterr().err.startswith("error: ")


class TestStoreCommand:
    def test_stats_on_an_empty_store(self, tmp_path, capsys):
        assert main(["store", "stats", "--store",
                     str(tmp_path / "empty")]) == 0
        output = capsys.readouterr().out
        assert "Result store" in output
        assert "0 records" in output

    def test_key_prints_one_hex_token_line(self, capsys):
        assert main(["store", "key"]) == 0
        output = capsys.readouterr().out.strip()
        assert len(output.splitlines()) == 1
        assert len(output) == 64
        assert all(char in "0123456789abcdef" for char in output)

    def test_campaign_populates_then_gc_keeps_then_clear_empties(
            self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(["campaign", "--run", "paper-real-case", "--store",
                     store_dir]) == 0
        capsys.readouterr()
        assert main(["store", "stats", "--store", store_dir]) == 0
        assert "campaign-scenario" in capsys.readouterr().out
        assert main(["store", "gc", "--store", store_dir]) == 0
        assert "removed 0 stale" in capsys.readouterr().out
        assert main(["store", "clear", "--store", store_dir]) == 0
        assert "removed 1 records" in capsys.readouterr().out

    def test_campaign_resume_reuses_the_previous_run(self, tmp_path,
                                                     capsys):
        store_dir = str(tmp_path / "store")
        assert main(["campaign", "--run", "ladder", "--store",
                     store_dir]) == 0
        assert "resumed 0/4 scenarios" in capsys.readouterr().out
        assert main(["campaign", "--run", "ladder", "--store", store_dir,
                     "--resume"]) == 0
        assert "resumed 4/4 scenarios" in capsys.readouterr().out

    def test_no_store_disables_persistence(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(["campaign", "--run", "paper-real-case", "--store",
                     str(store_dir), "--no-store"]) == 0
        assert "store:" not in capsys.readouterr().out
        assert not store_dir.exists()

    def test_report_warm_run_recomputes_nothing(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        args = ["report", "--experiment", "figure1", "--store", store_dir]
        assert main(args + ["--output", str(tmp_path / "a")]) == 0
        assert "resumed 0/1 experiments" in capsys.readouterr().out
        assert main(args + ["--output", str(tmp_path / "b")]) == 0
        assert "resumed 1/1 experiments" in capsys.readouterr().out
        first = (tmp_path / "a" / "figure1" / "bounds.md").read_bytes()
        second = (tmp_path / "b" / "figure1" / "bounds.md").read_bytes()
        assert first == second

    def test_simulate_resume_reports_resumed_cells(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        argv = ["--stations", "6", "--seed", "3", "simulate", "--seeds",
                "1", "--scenarios", "synchronized", "--policies", "fcfs",
                "--store", store_dir]
        assert main(argv) == 0
        assert "resumed 0/1 cells" in capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        assert "resumed 1/1 cells" in capsys.readouterr().out


class TestFuzzCommand:
    #: The smallest useful campaign, isolated from the real store/corpus.
    SMALL = ["fuzz", "--count", "2", "--no-store", "--no-corpus"]

    def test_small_campaign_prints_table_and_exits_zero(self, capsys):
        assert main(self.SMALL) == 0
        output = capsys.readouterr().out
        assert "Tightest fuzzed cells" in output
        assert "invariants hold: yes" in output
        assert "2 cells, 0 violations" in output

    def test_help_documents_the_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fuzz", "--help"])
        assert excinfo.value.code == 0
        help_text = capsys.readouterr().out
        for flag in ("--count", "--seed", "--jobs", "--resume", "--store",
                     "--corpus", "--tightness"):
            assert flag in help_text

    def test_invalid_count_is_a_one_line_error(self, capsys):
        assert main(["fuzz", "--count", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "--count" in err
        assert len(err.strip().splitlines()) == 1

    def test_negative_seed_is_a_one_line_error(self, capsys):
        assert main(["fuzz", "--seed", "-3"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "--seed" in err
        assert len(err.strip().splitlines()) == 1

    def test_invalid_jobs_rejected(self, capsys):
        assert main(["fuzz", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_store_resume_reports_hit_and_miss(self, tmp_path, capsys):
        argv = ["fuzz", "--count", "2", "--no-corpus",
                "--store", str(tmp_path / "store")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "resumed 0/2 cells" in first
        assert "0 hits" in first
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "resumed 2/2 cells" in second
        assert "2 hits" in second
        assert "all cells resumed" in second

    def test_same_seed_reruns_are_identical(self, capsys):
        assert main(self.SMALL) == 0
        first = capsys.readouterr().out
        assert main(self.SMALL) == 0
        second = capsys.readouterr().out
        # Wall-clock timings differ; the tables and verdicts must not.
        assert first.splitlines()[:-1] == second.splitlines()[:-1]

    def test_corpus_persistence_writes_under_the_given_dir(
            self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        # Threshold 0 makes every holding cell near-tight, so the corpus
        # receives entries even from a tiny campaign.
        assert main(["fuzz", "--count", "1", "--no-store",
                     "--tightness", "0.01",
                     "--corpus", str(corpus)]) == 0
        output = capsys.readouterr().out
        assert "corpus: 1 added, 0 updated, 0 unchanged" in output
        assert len(list(corpus.glob("near-tight-*.json"))) == 1

    def test_markdown_and_csv_outputs(self, tmp_path, capsys):
        path = tmp_path / "fuzz.csv"
        assert main(self.SMALL + ["--markdown", "--csv", str(path)]) == 0
        output = capsys.readouterr().out
        assert "### Tightest fuzzed cells" in output
        assert path.exists()
        header = path.read_text().splitlines()[0]
        assert "tightness" in header and "violations" in header


class TestSimulateCommand:
    def test_small_grid_prints_table_and_exits_zero(self, capsys):
        assert main(["--stations", "8", "--seed", "3", "simulate",
                     "--seeds", "2", "--scenarios", "synchronized",
                     "--policies", "fcfs"]) == 0
        output = capsys.readouterr().out
        assert "Monte-Carlo bound validation" in output
        assert "bounds hold: yes" in output
        assert "2 cells" in output

    def test_markdown_rendering(self, capsys):
        assert main(["--stations", "8", "--seed", "3", "simulate",
                     "--seeds", "1", "--scenarios", "synchronized",
                     "--policies", "fcfs", "--markdown"]) == 0
        assert "### Monte-Carlo bound validation" in capsys.readouterr().out

    def test_csv_export(self, tmp_path, capsys):
        path = tmp_path / "mc.csv"
        assert main(["--stations", "8", "--seed", "3", "simulate",
                     "--seeds", "1", "--scenarios", "synchronized",
                     "--policies", "fcfs", "--csv", str(path)]) == 0
        assert path.exists()
        header = path.read_text().splitlines()[0]
        assert "bound_holds" in header

    def test_jobs_fan_out(self, capsys):
        assert main(["--stations", "8", "--seed", "3", "simulate",
                     "--seeds", "2", "--scenarios", "synchronized",
                     "--policies", "fcfs", "--jobs", "2"]) == 0
        assert "2 jobs" in capsys.readouterr().out

    def test_invalid_seeds_rejected(self, capsys):
        assert main(["simulate", "--seeds", "0"]) == 2
        assert "--seeds" in capsys.readouterr().err

    def test_invalid_size_factors_rejected(self, capsys):
        assert main(["simulate", "--size-factors", "two"]) == 2
        assert "--size-factors" in capsys.readouterr().err

    def test_unknown_scenario_rejected(self, capsys):
        assert main(["simulate", "--scenarios", "warp"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_workload_csv_restricted_to_factor_one(self, tmp_path, capsys):
        workload = tmp_path / "set.csv"
        assert main(["--stations", "8", "--seed", "3", "export",
                     "--output", str(workload)]) == 0
        capsys.readouterr()
        assert main(["--workload", str(workload), "simulate",
                     "--seeds", "1", "--size-factors", "2"]) == 2
        assert "--size-factors" in capsys.readouterr().err
        assert main(["--workload", str(workload), "simulate",
                     "--seeds", "1", "--scenarios", "synchronized",
                     "--policies", "fcfs"]) == 0
