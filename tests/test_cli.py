"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_every_command_is_registered(self):
        parser = build_parser()
        for command in ("figure1", "violations", "baseline-1553", "compare",
                        "validate", "jitter", "buffers", "export"):
            args = parser.parse_args(
                [command] if command != "export"
                else [command, "--output", "x.csv"])
            assert args.command == command

    def test_missing_command_is_an_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_figure1_prints_the_table_and_succeeds(self, capsys):
        exit_code = main(["--stations", "8", "--seed", "3", "figure1"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Delay bounds for the two approaches" in output
        assert "P0 urgent sporadic" in output

    def test_violations_command(self, capsys):
        exit_code = main(["--stations", "8", "--seed", "3", "violations"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "10 Mbps" in output and "100 Mbps" in output

    def test_compare_command(self, capsys):
        exit_code = main(["--stations", "8", "--seed", "3", "compare"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "1553B" in output

    def test_validate_command_reports_holding_bounds(self, capsys):
        exit_code = main(["--stations", "6", "--seed", "3", "validate"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "strict-priority" in output

    def test_export_then_reuse_as_workload(self, tmp_path, capsys):
        target = tmp_path / "exported.csv"
        assert main(["--stations", "6", "--seed", "3", "export",
                     "--output", str(target)]) == 0
        assert target.exists()
        exit_code = main(["--workload", str(target), "figure1"])
        assert exit_code == 0
        assert "Delay bounds" in capsys.readouterr().out

    def test_capacity_override_changes_the_result(self, capsys):
        main(["--stations", "8", "--seed", "3",
              "--capacity-mbps", "100", "figure1"])
        fast_output = capsys.readouterr().out
        main(["--stations", "8", "--seed", "3", "figure1"])
        slow_output = capsys.readouterr().out
        assert fast_output != slow_output
