"""The documentation layer stays present, consistent and executable.

Mirrors CI's documentation gates so broken docs fail tier-1 locally, not
just on GitHub: ``tools/check_docs_links.py`` (files, anchors and
``artifacts/`` links resolve), ``tools/check_docstrings.py`` (every public
symbol documents itself) and ``tools/docgen.py`` (every quantitative
statement in the docs matches the generated artifacts).
"""

import importlib.util
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_tool(stem):
    spec = importlib.util.spec_from_file_location(
        stem, REPO_ROOT / "tools" / f"{stem}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault(stem, module)
    spec.loader.exec_module(module)
    return module


checker = _load_tool("check_docs_links")
docstrings = _load_tool("check_docstrings")
docgen = _load_tool("docgen")


class TestDocumentationLayer:
    def test_readme_and_design_exist(self):
        assert checker.missing_required_docs() == []

    def test_readme_covers_every_cli_subcommand(self):
        from repro.cli import COMMANDS
        readme = (REPO_ROOT / "README.md").read_text()
        for spec in COMMANDS:
            assert spec.name in readme, (
                f"README.md does not document the {spec.name!r} subcommand")

    def test_design_documents_every_subpackage(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        for package in ("core.netcalc", "core.multiplexer", "flows",
                        "shaping", "ethernet", "milstd1553", "simulation",
                        "topology", "workloads", "analysis", "reporting",
                        "campaigns", "reports"):
            assert f"repro.{package}" in design, (
                f"DESIGN.md does not document repro.{package}")

    def test_docstring_doc_references_resolve(self):
        assert checker.broken_docstring_references() == []

    def test_markdown_links_resolve(self):
        assert checker.broken_doc_links() == []


class TestAnchors:
    def test_heading_slugs_follow_github_rules(self):
        assert checker.heading_slug("9. Reports & artifacts") \
            == "9-reports--artifacts"
        assert checker.heading_slug("Tests and benchmarks") \
            == "tests-and-benchmarks"
        assert checker.heading_slug("`code` and *emphasis*") \
            == "code-and-emphasis"

    def test_underscores_survive_like_on_github(self):
        # t_techno must slug to t_techno (underscores are word chars);
        # the REPORT.md sensitivity heading depends on it.
        assert checker.heading_slug(
            "Sensitivity to the relaying-delay bound t_techno") \
            == "sensitivity-to-the-relaying-delay-bound-t_techno"

    def test_checker_slugs_agree_with_the_pipeline_slugger(self):
        from repro.reports import all_experiments
        from repro.reports.pipeline import heading_slug as pipeline_slug
        for spec in all_experiments():
            heading = f"{spec.name}: {spec.title}"
            assert checker.heading_slug(heading) == pipeline_slug(heading)

    def test_duplicate_headings_get_suffixes(self):
        slugs = checker.heading_slugs("# Same\n\n# Same\n")
        assert slugs == {"same", "same-1"}

    def test_fenced_code_blocks_are_not_headings(self):
        slugs = checker.heading_slugs("```\n# not a heading\n```\n# Real\n")
        assert slugs == {"real"}

    def test_broken_anchor_is_reported(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "README.md").write_text(
            "# Title\n[link](#no-such-section)\n")
        (tmp_path / "DESIGN.md").write_text("# Design\n")
        problems = checker.broken_doc_links(tmp_path)
        assert any("no-such-section" in problem for problem in problems)

    def test_cross_document_anchor_is_checked(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "README.md").write_text(
            "[ok](DESIGN.md#a-section)\n[bad](DESIGN.md#missing)\n")
        (tmp_path / "DESIGN.md").write_text("## A section\n")
        problems = checker.broken_doc_links(tmp_path)
        assert len(problems) == 1
        assert "DESIGN.md#missing" in problems[0]

    def test_links_inside_fenced_code_blocks_are_ignored(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "README.md").write_text(
            "# Title\n```\n[example](no-such.md) and `src/fake.py`\n```\n")
        (tmp_path / "DESIGN.md").write_text("# Design\n")
        assert checker.broken_doc_links(tmp_path) == []

    def test_artifacts_links_are_validated(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "README.md").write_text(
            "See `artifacts/REPORT.md` for the report.\n")
        (tmp_path / "DESIGN.md").write_text("# Design\n")
        problems = checker.broken_doc_links(tmp_path)
        assert any("artifacts/REPORT.md" in problem for problem in problems)

    def test_generated_report_links_resolve_from_its_own_directory(self):
        # artifacts/REPORT.md links figure1/bounds.csv etc. relative to
        # itself; the checker must resolve those against artifacts/.
        assert (REPO_ROOT / "artifacts" / "REPORT.md").is_file()
        assert checker.broken_doc_links() == []


class TestDocstringCoverage:
    def test_every_public_symbol_is_documented(self):
        assert docstrings.undocumented_symbols() == []


class TestExecutableDocs:
    def test_docgen_check_passes_on_the_committed_docs(self):
        values = docgen.load_values(REPO_ROOT / "artifacts" / "values.json")
        # The benchmark-derived bench.* keys ride on top, as in docgen.main.
        values.update(docgen.load_values(
            REPO_ROOT / docgen.DEFAULT_BENCH_VALUES))
        for name in docgen.DEFAULT_DOCS:
            text = (REPO_ROOT / name).read_text()
            new_text, stale, unknown = docgen.substitute(text, values)
            assert unknown == [], f"{name}: unknown keys {unknown}"
            # bench.* spans carry machine timings; a local benchmark run
            # legitimately refreshes them, so only deterministic keys may
            # fail the drift check (mirrors docgen --check).
            stale = [key for key in stale
                     if not key.startswith(docgen.VOLATILE_PREFIX)]
            assert stale == [], (
                f"{name}: stale spans {stale} — run `repro report` then "
                f"`python tools/docgen.py`")

    def test_stale_span_is_detected_and_rewritten(self):
        text = "Bound: <!-- repro:k -->old<!-- /repro --> end"
        new_text, stale, unknown = docgen.substitute(text, {"k": "new"})
        assert stale == ["k"] and unknown == []
        assert new_text == "Bound: <!-- repro:k -->new<!-- /repro --> end"

    def test_unknown_key_is_reported_and_left_alone(self):
        text = "<!-- repro:ghost -->x<!-- /repro -->"
        new_text, stale, unknown = docgen.substitute(text, {})
        assert unknown == ["ghost"] and new_text == text

    def test_multiline_values_round_trip(self):
        table = "| a |\n| - |\n"
        text = f"<!-- repro:idx -->\n{table}<!-- /repro -->"
        new_text, stale, unknown = docgen.substitute(text, {"idx": table})
        assert stale == [] and unknown == []
        assert new_text == text


class TestExperimentIndexSync:
    def test_design_index_matches_the_registry(self):
        from repro.reports import all_experiments
        design = (REPO_ROOT / "DESIGN.md").read_text()
        match = re.search(
            r"<!--\s*repro:report\.experiment-index\s*-->(.*?)"
            r"<!--\s*/repro\s*-->", design, re.DOTALL)
        assert match, "DESIGN.md lost its experiment-index span"
        indexed = re.findall(r"\|\s*\[([\w-]+)\]\(artifacts/",
                             match.group(1))
        assert indexed == [spec.name for spec in all_experiments()], (
            "DESIGN.md's experiment index is out of sync with the "
            "registry — run `repro report` then `python tools/docgen.py`")

    def test_report_covers_every_registered_experiment(self):
        from repro.reports import all_experiments
        report = (REPO_ROOT / "artifacts" / "REPORT.md").read_text()
        for spec in all_experiments():
            assert f"## {spec.name}: {spec.title}" in report
