"""The documentation layer stays present and internally consistent.

Mirrors CI's ``tools/check_docs_links.py`` run so broken docs fail tier-1
locally, not just on GitHub.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs_links", REPO_ROOT / "tools" / "check_docs_links.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs_links", module)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


class TestDocumentationLayer:
    def test_readme_and_design_exist(self):
        assert checker.missing_required_docs() == []

    def test_readme_covers_every_cli_subcommand(self):
        from repro.cli import COMMANDS
        readme = (REPO_ROOT / "README.md").read_text()
        for spec in COMMANDS:
            assert spec.name in readme, (
                f"README.md does not document the {spec.name!r} subcommand")

    def test_design_documents_every_subpackage(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        for package in ("core.netcalc", "core.multiplexer", "flows",
                        "shaping", "ethernet", "milstd1553", "simulation",
                        "topology", "workloads", "analysis", "reporting",
                        "campaigns"):
            assert f"repro.{package}" in design, (
                f"DESIGN.md does not document repro.{package}")

    def test_docstring_doc_references_resolve(self):
        assert checker.broken_docstring_references() == []

    def test_markdown_links_resolve(self):
        assert checker.broken_doc_links() == []
