"""Integration: the full migration pipeline from 1553B to switched Ethernet."""

import pytest

from repro import (
    EthernetNetworkSimulator,
    MajorFrameSchedule,
    Milstd1553BusSimulator,
    PriorityClass,
    units,
)
from repro.analysis import (
    baseline_1553_report,
    jitter_comparison,
    technology_comparison,
)
from repro.analysis.validation import star_for_message_set
from repro.milstd1553 import Milstd1553Analysis
from repro.workloads import (
    generate_real_case,
    load_message_set_csv,
    save_message_set_csv,
)


class TestWorkloadRoundTripThroughTheWholeStack:
    def test_csv_exported_workload_reproduces_the_same_bounds(self, real_case,
                                                              tmp_path):
        from repro import PaperCaseStudy
        path = tmp_path / "workload.csv"
        save_message_set_csv(real_case, path)
        reloaded = load_message_set_csv(path)
        original = PaperCaseStudy(real_case).class_bounds("strict-priority")
        roundtrip = PaperCaseStudy(reloaded).class_bounds("strict-priority")
        for cls, bound in original.items():
            assert roundtrip[cls] == pytest.approx(bound)


class TestMigrationStory:
    """The complete E3 + E4 + E6 chain on one (small) message set."""

    def test_both_worlds_run_on_the_same_message_set(self, small_case):
        # 1553B side: schedule, analysis, simulation.
        schedule = MajorFrameSchedule(small_case)
        schedule.validate()
        bus_results = Milstd1553BusSimulator(
            small_case, schedule=schedule).run(duration=units.ms(320))
        assert bus_results.instances_delivered > 0

        # Ethernet side: simulation on the star topology.
        network = star_for_message_set(small_case)
        ethernet_results = EthernetNetworkSimulator(
            network, small_case.messages,
            policy="strict-priority").run(duration=units.ms(320))
        assert ethernet_results.frames_dropped == 0

        # Every periodic stream is delivered at least as often on Ethernet
        # as on the bus (the bus serves it per schedule slot, Ethernet per
        # release).
        for message in small_case.periodic():
            assert ethernet_results.flow_latencies[message.name].count >= \
                bus_results.message_latencies[message.name].count

    def test_comparison_report_tells_the_migration_story(self, small_case):
        rows = technology_comparison(small_case)
        urgent = next(r for r in rows if r.priority is PriorityClass.URGENT)
        assert not urgent.milstd1553_ok
        assert urgent.priority_ok
        assert all(row.priority_ok for row in rows)

    def test_baseline_report_and_bus_analysis_agree(self, small_case):
        report = baseline_1553_report(small_case,
                                      simulation_duration=units.ms(320))
        analysis = Milstd1553Analysis(MajorFrameSchedule(small_case))
        worst = max(bound.bound for bound in analysis.all_bounds().values())
        assert max(report.analytic_worst_per_class.values()) == \
            pytest.approx(worst)

    def test_jitter_study_covers_every_technology_and_class(self, small_case):
        rows = jitter_comparison(small_case, duration=units.ms(320))
        technologies = {row.technology for row in rows}
        assert technologies == {"mil-std-1553b", "ethernet-fcfs",
                                "ethernet-priority"}
        ethernet_rows = [row for row in rows
                         if row.technology == "ethernet-priority"]
        assert {row.priority for row in ethernet_rows} == set(PriorityClass)


class TestScalabilityOfTheAnalysis:
    def test_analysis_handles_a_much_larger_system(self):
        from repro import PaperCaseStudy
        from repro.workloads import RealCaseParameters, scale_station_count
        base = generate_real_case(RealCaseParameters(station_count=16),
                                  seed=2)
        large = scale_station_count(base, 4)  # 64 stations, ~576 messages
        study = PaperCaseStudy(large, capacity=units.mbps(100))
        rows = study.figure1_rows()
        assert sum(row.message_count for row in rows) == len(large)
        # At 100 Mbps even the larger system meets every constraint with
        # priorities.
        assert study.priority_meets_all_constraints()
