"""Integration: analytic bounds must dominate simulated behaviour.

This is the strongest correctness statement the library can make: for every
class and policy, the worst delay observed in the frame-level simulation
never exceeds the network-calculus bound computed for the same scenario.
"""

import pytest

from repro import (
    EndToEndAnalysis,
    EthernetNetworkSimulator,
    Message,
    PriorityClass,
    units,
)
from repro.analysis import validate_bounds
from repro.analysis.validation import wire_level_messages
from repro.topology import single_switch_star
from repro.workloads import RealCaseParameters, generate_real_case


class TestSmallAdversarialScenario:
    """A hand-built hot-spot scenario checked flow by flow."""

    @pytest.fixture(scope="class")
    def scenario(self):
        messages = [
            Message.sporadic("alarm", min_interarrival=units.ms(20),
                             size=units.words1553(2),
                             source="station-01", destination="station-00",
                             deadline=units.ms(3)),
            Message.periodic("nav", period=units.ms(20),
                             size=units.words1553(16),
                             source="station-02", destination="station-00"),
            Message.sporadic("bulk-1", min_interarrival=units.ms(40),
                             size=units.bytes_(1500),
                             source="station-03", destination="station-00"),
            Message.sporadic("bulk-2", min_interarrival=units.ms(40),
                             size=units.bytes_(1500),
                             source="station-01", destination="station-00"),
        ]
        network = single_switch_star(4)
        return network, messages

    @pytest.mark.parametrize("policy", ["fcfs", "strict-priority"])
    def test_per_flow_bounds_dominate_simulation(self, scenario, policy):
        network, messages = scenario
        analysis = EndToEndAnalysis(network, policy=policy)
        analytic = analysis.analyze(
            wire_level_messages_from(messages))
        simulator = EthernetNetworkSimulator(network, messages, policy=policy,
                                             scenario="synchronized")
        results = simulator.run(duration=units.ms(320))
        for message in messages:
            observed = results.flow_latencies[message.name].maximum
            bound = analytic.bound_for(message.name).total_delay
            assert observed <= bound + 1e-9, message.name


def wire_level_messages_from(messages):
    """Helper mirroring validation.wire_level_messages for a plain list."""
    from repro import MessageSet
    return wire_level_messages(MessageSet(messages, name="scenario"))


class TestCaseStudyValidation:
    def test_bounds_hold_for_the_small_case(self, small_case):
        rows = validate_bounds(small_case,
                               simulation_duration=units.ms(320))
        assert len(rows) >= 6
        for row in rows:
            assert row.bound_holds

    def test_bounds_hold_with_a_different_seed_and_scenario(self):
        message_set = generate_real_case(
            RealCaseParameters(station_count=6), seed=17, name="alt")
        rows = validate_bounds(message_set, seed=3,
                               simulation_duration=units.ms(160))
        for row in rows:
            assert row.bound_holds

    def test_simulated_class_ordering_matches_the_analysis(self, small_case):
        rows = validate_bounds(small_case,
                               simulation_duration=units.ms(160),
                               policies=("strict-priority",))
        ordered = sorted(rows, key=lambda row: row.priority)
        simulated = [row.simulated_worst for row in ordered]
        # The urgent class is served first, so its simulated worst case is
        # the smallest of all classes.
        assert simulated[0] == min(simulated)


class TestNoDropGuarantee:
    def test_shaped_traffic_never_overflows_a_dimensioned_buffer(self, small_case):
        """With shaping on, a buffer of the analytic backlog bound suffices."""
        network = single_switch_star(len(small_case.stations()))
        simulator = EthernetNetworkSimulator(
            network, small_case.messages, policy="strict-priority",
            scenario="synchronized",
            queue_capacity=small_case.total_burst() * 4)
        results = simulator.run(duration=units.ms(320))
        assert results.frames_dropped == 0
        assert results.instances_delivered == results.instances_sent
