"""Integration: the paper's claims, end to end, on the full pipeline.

These tests chain workload generation, the analytic models and the reporting
layer exactly as the benchmark harness does, and assert the qualitative
findings of the paper (Figure 1 and the surrounding discussion).
"""

import pytest

from repro import PaperCaseStudy, PriorityClass, units
from repro.analysis import fcfs_violation_table, technology_comparison
from repro.reporting import format_ms, render_bar_chart, render_table
from repro.workloads import RealCaseParameters, generate_real_case


class TestFigure1Pipeline:
    def test_full_pipeline_renders_figure1(self, real_case):
        study = PaperCaseStudy(real_case)
        rows = study.figure1_rows()
        table = render_table(
            ["class", "deadline", "fcfs", "priority"],
            [(row.priority.label, format_ms(row.deadline),
              format_ms(row.fcfs_bound), format_ms(row.priority_bound))
             for row in rows],
            title="Figure 1")
        assert "Figure 1" in table
        assert "P0 urgent sporadic" in table
        chart = render_bar_chart(
            [row.priority.name for row in rows],
            [units.to_ms(row.priority_bound) for row in rows], unit="ms")
        assert chart.count("\n") >= len(rows)

    def test_headline_claims_hold_for_several_seeds(self):
        """The qualitative result is not an artefact of the default seed."""
        for seed in (1, 7, 23):
            study = PaperCaseStudy(generate_real_case(seed=seed))
            assert study.fcfs_violates_constraints(), seed
            assert study.priority_meets_all_constraints(), seed
            assert study.urgent_priority_bound_below_3ms(), seed
            assert study.periodic_priority_bound_below_fcfs(), seed

    def test_headline_claims_hold_for_a_larger_system(self):
        params = RealCaseParameters(station_count=24)
        study = PaperCaseStudy(generate_real_case(params, seed=11))
        assert study.fcfs_violates_constraints()
        assert study.priority_meets_all_constraints()

    def test_speed_alone_is_not_sufficient_but_priorities_are(self, real_case):
        """The paper's core argument, as one boolean expression."""
        ten_mbps = PaperCaseStudy(real_case, capacity=units.mbps(10))
        one_mbps_equivalent = real_case.total_rate() / units.mbps(1)
        # The aggregate traffic would overload the 1 Mbps 1553B bus ten times
        # less than Ethernet's capacity, yet FCFS still misses the 3 ms goal.
        assert one_mbps_equivalent < 1.0
        assert ten_mbps.fcfs_violates_constraints()
        assert ten_mbps.priority_meets_all_constraints()


class TestCrossExperimentConsistency:
    def test_violation_table_is_consistent_with_the_study(self, real_case):
        study = PaperCaseStudy(real_case)
        rows = [row for row in fcfs_violation_table(real_case)
                if row.capacity == units.mbps(10)]
        fcfs_bounds = study.class_bounds("fcfs")
        for row in rows:
            assert row.fcfs_bound == pytest.approx(fcfs_bounds[row.priority])

    def test_comparison_is_consistent_with_the_study(self, real_case):
        study = PaperCaseStudy(real_case)
        comparison = technology_comparison(real_case)
        priority_bounds = study.class_bounds("strict-priority")
        for row in comparison:
            assert row.ethernet_priority_bound == pytest.approx(
                priority_bounds[row.priority])

    def test_urgent_class_margin_is_meaningful(self, real_case):
        """The priority bound leaves real margin under the 3 ms constraint."""
        study = PaperCaseStudy(real_case)
        urgent = study.class_bounds("strict-priority")[PriorityClass.URGENT]
        assert urgent < units.ms(1.5)
