"""Flows (routed messages)."""

import pytest

from repro import Flow, Message, PriorityClass, units
from repro.errors import InvalidFlowError


def message(**overrides):
    defaults = dict(name="nav", period=units.ms(20), size=128,
                    source="station-00", destination="station-01")
    defaults.update(overrides)
    return Message.periodic(**defaults)


class TestFlowConstruction:
    def test_priority_defaults_to_paper_policy(self):
        assert Flow(message()).priority is PriorityClass.PERIODIC

    def test_explicit_priority_is_kept(self):
        flow = Flow(message(), priority=PriorityClass.URGENT)
        assert flow.priority is PriorityClass.URGENT

    def test_integer_priority_is_coerced(self):
        assert Flow(message(), priority=2).priority is PriorityClass.SPORADIC

    def test_proxies_to_the_message(self):
        flow = Flow(message())
        assert flow.name == "nav"
        assert flow.source == "station-00"
        assert flow.destination == "station-01"
        assert flow.burst == 128
        assert flow.rate == pytest.approx(128 / 0.02)
        assert flow.deadline == pytest.approx(units.ms(20))


class TestPathHandling:
    def test_with_path_returns_routed_copy(self):
        flow = Flow(message())
        routed = flow.with_path(["station-00", "switch-0", "station-01"])
        assert routed.path == ("station-00", "switch-0", "station-01")
        assert flow.path == ()

    def test_path_must_start_at_source(self):
        with pytest.raises(InvalidFlowError):
            Flow(message(), path=("switch-0", "station-01"))

    def test_path_must_end_at_destination(self):
        with pytest.raises(InvalidFlowError):
            Flow(message(),
                 path=("station-00", "switch-0", "station-02"))

    def test_hops_are_consecutive_pairs(self):
        flow = Flow(message()).with_path(
            ["station-00", "switch-0", "station-01"])
        assert flow.hops() == [("station-00", "switch-0"),
                               ("switch-0", "station-01")]

    def test_hops_empty_without_path(self):
        assert Flow(message()).hops() == []

    def test_switches_are_the_intermediate_nodes(self):
        flow = Flow(message()).with_path(
            ["station-00", "leaf-0", "core", "leaf-1", "station-01"])
        assert flow.switches() == ["leaf-0", "core", "leaf-1"]
