"""The struct-of-arrays message view and the lazy replicated sets.

The equivalence battery required by the array backend: aggregates computed
through :class:`MessageArrays` (and through the arithmetic replication
shortcut) must match the per-message reference loop — bit-identically for
plain sets, and to within arithmetic-rescaling precision for replicated
ones — on the paper's case study at scales 1 through 32.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Message, MessageSet, units
from repro.flows.arrays import MessageArrays, sequential_sum
from repro.flows.message_set import ReplicatedMessageSet
from repro.flows.priorities import PriorityClass, assign_priority
from repro.core.multiplexer import aggregate_flows, aggregate_from_arrays
from repro.workloads.sweeps import scale_station_count


def _reference_aggregates(messages):
    """Literal transcription of the per-message aggregation loop."""
    bursts, rates, max_bursts, counts = {}, {}, {}, {}
    for message in messages:
        cls = assign_priority(message)
        burst = float(message.burst)
        bursts[cls] = bursts.get(cls, 0.0) + burst
        rates[cls] = rates.get(cls, 0.0) + float(message.rate)
        max_bursts[cls] = max(max_bursts.get(cls, 0.0), burst)
        counts[cls] = counts.get(cls, 0) + 1
    return {cls: (bursts[cls], rates[cls], max_bursts[cls], counts[cls])
            for cls in sorted(bursts)}


class TestSequentialSum:
    def test_matches_builtin_sum_bit_for_bit(self, real_case):
        rates = [m.rate for m in real_case]
        assert sequential_sum(rates) == sum(rates)

    def test_empty(self):
        assert sequential_sum([]) == 0.0

    def test_adversarial_magnitudes(self):
        # Mixed magnitudes where pairwise and sequential summation differ.
        values = [1e16, 1.0, -1e16, 1.0] * 50
        assert sequential_sum(values) == sum(values)


class TestMessageArrays:
    def test_columns_align_with_messages(self, tiny_message_set):
        arrays = tiny_message_set.arrays()
        messages = tiny_message_set.messages
        assert arrays.names == tuple(m.name for m in messages)
        assert list(arrays.periods) == [m.period for m in messages]
        assert list(arrays.sizes) == [m.size for m in messages]
        assert list(arrays.rates) == [m.rate for m in messages]
        assert list(arrays.priorities) == [assign_priority(m).value
                                           for m in messages]

    def test_deadlines_use_nan_for_none(self, tiny_message_set):
        arrays = tiny_message_set.arrays()
        for message, deadline in zip(tiny_message_set.messages,
                                     arrays.deadlines):
            if message.deadline is None:
                assert np.isnan(deadline)
            else:
                assert deadline == message.deadline

    def test_view_is_cached_until_mutation(self, tiny_message_set):
        first = tiny_message_set.arrays()
        assert tiny_message_set.arrays() is first
        tiny_message_set.add(Message.periodic(
            "extra", period=units.ms(40), size=units.words1553(4),
            source="station-00", destination="station-02"))
        second = tiny_message_set.arrays()
        assert second is not first
        assert len(second) == len(first) + 1

    def test_aggregate_quantities_match_message_loops(self, real_case):
        arrays = real_case.arrays()
        assert arrays.total_rate() == sum(m.rate for m in real_case)
        assert arrays.total_burst() == sum(m.burst for m in real_case)
        assert arrays.max_burst() == max(m.burst for m in real_case)

    def test_class_deadlines_match_reference_scan(self, real_case):
        expected = {}
        for cls, messages in real_case.by_priority().items():
            if not messages:
                continue
            with_deadline = [m.deadline for m in messages
                             if m.deadline is not None]
            expected[cls] = min(with_deadline) if with_deadline else None
        assert real_case.class_deadlines() == expected


class TestAggregateEquivalence:
    def test_bit_identical_on_the_case_study(self, real_case):
        reference = _reference_aggregates(real_case.messages)
        via_arrays = aggregate_from_arrays(real_case.arrays())
        assert {cls: (a.burst, a.rate, a.max_burst, a.count)
                for cls, a in via_arrays.items()} == reference

    def test_message_set_dispatch_uses_the_arrays(self, real_case):
        assert aggregate_flows(real_case) == \
            aggregate_flows(real_case.messages)

    @pytest.mark.parametrize("scale", [1, 2, 4, 8, 16, 32])
    def test_scaled_aggregates_match_materialized_loop(self, real_case,
                                                       scale):
        scaled = scale_station_count(real_case, scale)
        fast = aggregate_flows(scaled)
        # Reference: materialise every replica and run the message loop.
        reference = _reference_aggregates(list(scaled))
        assert set(fast) == set(reference)
        for cls, aggregate in fast.items():
            burst, rate, max_burst, count = reference[cls]
            assert aggregate.count == count
            assert aggregate.max_burst == max_burst
            assert aggregate.burst == pytest.approx(burst, rel=1e-12)
            assert aggregate.rate == pytest.approx(rate, rel=1e-12)


class TestReplicatedMessageSet:
    @pytest.fixture()
    def replicated(self, tiny_message_set):
        return scale_station_count(tiny_message_set, 3)

    def test_aggregates_do_not_materialize(self, tiny_message_set):
        replicated = scale_station_count(tiny_message_set, 4)
        assert isinstance(replicated, ReplicatedMessageSet)
        assert len(replicated) == 4 * len(tiny_message_set)
        assert replicated.total_rate() == \
            pytest.approx(4 * tiny_message_set.total_rate())
        assert replicated.total_burst() == \
            pytest.approx(4 * tiny_message_set.total_burst())
        assert replicated.max_burst() == tiny_message_set.max_burst()
        assert replicated.class_deadlines() == \
            tiny_message_set.class_deadlines()
        assert not replicated.is_materialized

    def test_materialized_names_follow_the_replica_scheme(self, replicated,
                                                          tiny_message_set):
        names = [m.name for m in replicated]
        base = [m.name for m in tiny_message_set]
        assert names == (base + [f"{n}-r1" for n in base]
                         + [f"{n}-r2" for n in base])
        assert replicated.is_materialized

    def test_replica_stations_are_disjoint(self, replicated,
                                           tiny_message_set):
        assert len(replicated.stations()) == \
            3 * len(tiny_message_set.stations())

    def test_scale_one_returns_the_original(self, tiny_message_set):
        assert scale_station_count(tiny_message_set, 1) is tiny_message_set

    def test_mutation_drops_the_arithmetic_shortcuts(self, replicated):
        extra = Message.periodic(
            "extra", period=units.ms(20), size=units.words1553(10),
            source="new-station", destination="station-00")
        replicated.add(extra)
        assert replicated.arithmetic_replication is None
        assert len(replicated) == 3 * 5 + 1
        assert replicated.total_burst() == \
            sum(m.burst for m in replicated)
        assert "extra" in replicated

    def test_replication_below_one_rejected(self, tiny_message_set):
        from repro.errors import InvalidWorkloadError
        with pytest.raises(InvalidWorkloadError):
            ReplicatedMessageSet(tiny_message_set, 0)

    def test_materialization_snapshots_the_base(self, tiny_message_set):
        """Once materialised, the replica is frozen: later base mutations
        must not leak into its aggregates (they no longer reach its
        messages)."""
        replicated = scale_station_count(tiny_message_set, 2)
        names = [m.name for m in replicated]  # materialise
        tiny_message_set.add(Message.periodic(
            "post-snapshot", period=units.ms(20),
            size=units.words1553(50),
            source="station-09", destination="station-00"))
        assert replicated.arithmetic_replication is None
        assert len(replicated) == len(names)
        assert [m.name for m in replicated] == names
        assert replicated.total_rate() == \
            sum(m.rate for m in replicated)
        from repro.core.multiplexer import aggregate_flows
        total = sum(a.count for a in aggregate_flows(replicated).values())
        assert total == len(names)

    def test_base_mutation_before_materialization_is_visible(
            self, tiny_message_set):
        replicated = scale_station_count(tiny_message_set, 2)
        version = replicated.version
        tiny_message_set.add(Message.periodic(
            "pre-snapshot", period=units.ms(20), size=units.words1553(5),
            source="station-09", destination="station-00"))
        assert replicated.version > version
        assert len(replicated) == 2 * len(tiny_message_set)
        assert "pre-snapshot-r1" in [m.name for m in replicated]

    def test_colliding_replica_names_rejected_like_eager_replication(self):
        from repro.errors import InvalidWorkloadError
        base = MessageSet([
            Message.periodic("a", period=units.ms(20),
                             size=units.words1553(4),
                             source="s0", destination="sink"),
            Message.periodic("a-r1", period=units.ms(20),
                             size=units.words1553(4),
                             source="s1", destination="sink"),
        ])
        replicated = scale_station_count(base, 2)
        with pytest.raises(InvalidWorkloadError):
            list(replicated)
