"""Message characterisation."""

import pytest

from repro import Message, MessageKind, units
from repro.errors import InvalidMessageError


def periodic(**overrides):
    defaults = dict(name="nav", period=units.ms(20),
                    size=units.words1553(8), source="a", destination="b")
    defaults.update(overrides)
    return Message.periodic(**defaults)


class TestConstruction:
    def test_periodic_constructor_sets_kind(self):
        assert periodic().kind is MessageKind.PERIODIC

    def test_sporadic_constructor_sets_kind(self):
        message = Message.sporadic("alarm", min_interarrival=units.ms(20),
                                   size=32, source="a", destination="b",
                                   deadline=units.ms(3))
        assert message.kind is MessageKind.SPORADIC
        assert message.is_sporadic and not message.is_periodic

    def test_periodic_default_deadline_is_the_period(self):
        assert periodic().deadline == pytest.approx(units.ms(20))

    def test_periodic_explicit_deadline_kept(self):
        assert periodic(deadline=units.ms(5)).deadline == units.ms(5)

    def test_sporadic_deadline_may_be_none(self):
        message = Message.sporadic("bulk", min_interarrival=units.ms(160),
                                   size=512, source="a", destination="b")
        assert message.deadline is None

    def test_metadata_is_stored(self):
        assert periodic(words=8).metadata == {"words": 8}

    def test_metadata_does_not_affect_equality(self):
        assert periodic(words=8) == periodic(words=16)


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(InvalidMessageError):
            Message(name="", kind=MessageKind.PERIODIC, period=1.0, size=1,
                    source="a", destination="b")

    def test_non_positive_period_rejected(self):
        with pytest.raises(InvalidMessageError):
            periodic(period=0.0)

    def test_non_positive_size_rejected(self):
        with pytest.raises(InvalidMessageError):
            periodic(size=0)

    def test_non_positive_deadline_rejected(self):
        with pytest.raises(InvalidMessageError):
            periodic(deadline=0.0)

    def test_same_source_and_destination_rejected(self):
        with pytest.raises(InvalidMessageError):
            periodic(destination="a")

    def test_missing_source_rejected(self):
        with pytest.raises(InvalidMessageError):
            periodic(source="")


class TestDerivedQuantities:
    def test_rate_is_size_over_period(self):
        message = periodic(period=units.ms(20), size=units.words1553(8))
        assert message.rate == pytest.approx(128 / 0.02)

    def test_burst_is_the_size(self):
        assert periodic(size=256).burst == 256

    def test_utilization(self):
        message = periodic(period=units.ms(20), size=200)
        assert message.utilization(units.mbps(10)) == pytest.approx(1e-3)

    def test_utilization_rejects_bad_capacity(self):
        with pytest.raises(InvalidMessageError):
            periodic().utilization(0)

    def test_transmission_time(self):
        assert periodic(size=1000).transmission_time(units.mbps(10)) == \
            pytest.approx(1e-4)

    def test_transmission_time_rejects_bad_capacity(self):
        with pytest.raises(InvalidMessageError):
            periodic().transmission_time(-1)


class TestCopies:
    def test_with_deadline_returns_new_message(self):
        original = periodic()
        modified = original.with_deadline(units.ms(5))
        assert modified.deadline == units.ms(5)
        assert original.deadline == units.ms(20)

    def test_with_size_returns_new_message(self):
        original = periodic(size=128)
        modified = original.with_size(256)
        assert modified.size == 256
        assert original.size == 128
        assert modified.name == original.name
