"""AFDX virtual links."""

import pytest

from repro import Message, MessageKind, units
from repro.errors import InvalidMessageError
from repro.flows import VirtualLink
from repro.flows.virtual_link import STANDARD_BAGS


class TestVirtualLink:
    def make(self, **overrides):
        defaults = dict(name="vl-1", bag=units.ms(8),
                        max_frame_size=units.bytes_(200),
                        source="es-1", destination="es-2",
                        deadline=units.ms(10))
        defaults.update(overrides)
        return VirtualLink(**defaults)

    def test_rate_is_smax_over_bag(self):
        vl = self.make()
        assert vl.rate == pytest.approx(units.bytes_(200) / units.ms(8))

    def test_burst_is_smax(self):
        assert self.make().burst == units.bytes_(200)

    def test_standard_bag_detection(self):
        assert self.make(bag=units.ms(8)).is_standard_bag
        assert not self.make(bag=units.ms(7)).is_standard_bag

    def test_standard_bags_are_the_arinc_ladder(self):
        assert len(STANDARD_BAGS) == 8
        assert STANDARD_BAGS[0] == pytest.approx(units.ms(1))
        assert STANDARD_BAGS[-1] == pytest.approx(units.ms(128))

    def test_non_positive_bag_rejected(self):
        with pytest.raises(InvalidMessageError):
            self.make(bag=0.0)

    def test_non_positive_smax_rejected(self):
        with pytest.raises(InvalidMessageError):
            self.make(max_frame_size=0.0)

    def test_to_message_is_sporadic(self):
        message = self.make().to_message()
        assert message.kind is MessageKind.SPORADIC
        assert message.period == pytest.approx(units.ms(8))
        assert message.size == units.bytes_(200)
        assert message.deadline == pytest.approx(units.ms(10))
        assert message.metadata["virtual_link"] is True

    def test_from_message_roundtrip(self):
        message = Message.sporadic("vl-x", min_interarrival=units.ms(16),
                                   size=units.bytes_(100), source="a",
                                   destination="b", deadline=units.ms(20))
        vl = VirtualLink.from_message(message)
        assert vl.bag == pytest.approx(units.ms(16))
        assert vl.max_frame_size == units.bytes_(100)
        assert vl.to_message().size == message.size
