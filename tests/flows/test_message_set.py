"""Message sets."""

import pytest

from repro import Message, MessageSet, PriorityClass, units
from repro.errors import InvalidWorkloadError


class TestCollectionBehaviour:
    def test_len_and_contains(self, tiny_message_set):
        assert len(tiny_message_set) == 5
        assert "nav" in tiny_message_set
        assert "unknown" not in tiny_message_set

    def test_getitem(self, tiny_message_set):
        assert tiny_message_set["alarm"].deadline == pytest.approx(units.ms(3))

    def test_duplicate_names_rejected(self, tiny_message_set):
        with pytest.raises(InvalidWorkloadError):
            tiny_message_set.add(tiny_message_set["nav"])

    def test_iteration_preserves_insertion_order(self, tiny_message_set):
        assert [m.name for m in tiny_message_set] == [
            "nav", "air", "alarm", "status", "maintenance"]

    def test_extend(self):
        message_set = MessageSet()
        message_set.extend([
            Message.periodic("a", period=0.02, size=16, source="x",
                             destination="y"),
            Message.periodic("b", period=0.02, size=16, source="x",
                             destination="y"),
        ])
        assert len(message_set) == 2


class TestViews:
    def test_periodic_and_sporadic_partition(self, tiny_message_set):
        periodic = {m.name for m in tiny_message_set.periodic()}
        sporadic = {m.name for m in tiny_message_set.sporadic()}
        assert periodic == {"nav", "air"}
        assert sporadic == {"alarm", "status", "maintenance"}

    def test_by_source(self, tiny_message_set):
        by_source = tiny_message_set.by_source()
        assert {m.name for m in by_source["station-02"]} == {"air", "status"}

    def test_by_destination(self, tiny_message_set):
        by_destination = tiny_message_set.by_destination()
        assert {m.name for m in by_destination["station-01"]} == {
            "nav", "air", "alarm"}

    def test_by_priority_includes_every_class(self, tiny_message_set):
        by_priority = tiny_message_set.by_priority()
        assert set(by_priority) == set(PriorityClass)
        assert {m.name for m in by_priority[PriorityClass.URGENT]} == {"alarm"}
        assert {m.name for m in by_priority[PriorityClass.BACKGROUND]} == {
            "maintenance"}

    def test_filter(self, tiny_message_set):
        large = tiny_message_set.filter(lambda m: m.size >= units.words1553(24))
        assert {m.name for m in large} == {"status", "maintenance"}

    def test_from_station(self, tiny_message_set):
        assert {m.name for m in tiny_message_set.from_station("station-02")} \
            == {"air", "status"}

    def test_stations_union_of_sources_and_destinations(self, tiny_message_set):
        assert tiny_message_set.stations() == [
            "station-00", "station-01", "station-02", "station-03"]


class TestAggregates:
    def test_total_burst_and_rate(self, tiny_message_set):
        expected_burst = sum(m.size for m in tiny_message_set)
        expected_rate = sum(m.size / m.period for m in tiny_message_set)
        assert tiny_message_set.total_burst() == pytest.approx(expected_burst)
        assert tiny_message_set.total_rate() == pytest.approx(expected_rate)

    def test_max_burst(self, tiny_message_set):
        assert tiny_message_set.max_burst() == units.words1553(64)

    def test_max_burst_of_empty_set_is_zero(self):
        assert MessageSet().max_burst() == 0.0

    def test_utilization(self, tiny_message_set):
        utilization = tiny_message_set.utilization(units.mbps(10))
        assert 0 < utilization < 1

    def test_utilization_rejects_bad_capacity(self, tiny_message_set):
        with pytest.raises(InvalidWorkloadError):
            tiny_message_set.utilization(0)

    def test_period_extremes(self, tiny_message_set):
        assert tiny_message_set.smallest_period() == pytest.approx(units.ms(20))
        assert tiny_message_set.largest_period() == pytest.approx(units.ms(160))

    def test_period_extremes_of_empty_set_raise(self):
        with pytest.raises(InvalidWorkloadError):
            MessageSet().smallest_period()

    def test_summary_counts(self, tiny_message_set):
        summary = tiny_message_set.summary()
        assert summary["messages"] == 5
        assert summary["periodic"] == 2
        assert summary["sporadic"] == 3
        assert summary["stations"] == 4
        assert summary["class_0"] == 1
