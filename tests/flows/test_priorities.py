"""The paper's priority-assignment policy."""

import pytest

from repro import Message, PriorityClass, assign_priority, units


def sporadic(deadline):
    return Message.sporadic("m", min_interarrival=units.ms(20), size=32,
                            source="a", destination="b", deadline=deadline)


class TestPriorityClass:
    def test_four_classes(self):
        assert len(PriorityClass) == 4

    def test_urgent_is_numerically_smallest(self):
        assert PriorityClass.URGENT == 0
        assert PriorityClass.BACKGROUND == 3

    def test_ordering_matches_urgency(self):
        assert PriorityClass.URGENT < PriorityClass.PERIODIC
        assert PriorityClass.PERIODIC < PriorityClass.SPORADIC
        assert PriorityClass.SPORADIC < PriorityClass.BACKGROUND

    def test_is_higher_or_equal(self):
        assert PriorityClass.URGENT.is_higher_or_equal(PriorityClass.SPORADIC)
        assert PriorityClass.URGENT.is_higher_or_equal(PriorityClass.URGENT)
        assert not PriorityClass.BACKGROUND.is_higher_or_equal(
            PriorityClass.URGENT)

    def test_labels_mention_the_constraint(self):
        assert "3 ms" in PriorityClass.URGENT.label
        assert "periodic" in PriorityClass.PERIODIC.label.lower()


class TestAssignPriority:
    def test_periodic_messages_get_priority_1(self):
        message = Message.periodic("nav", period=units.ms(40), size=64,
                                   source="a", destination="b")
        assert assign_priority(message) is PriorityClass.PERIODIC

    def test_periodic_priority_ignores_deadline(self):
        # Even a periodic message with a very tight deadline stays in P1,
        # exactly as the paper assigns priorities by traffic type.
        message = Message.periodic("nav", period=units.ms(20), size=64,
                                   source="a", destination="b",
                                   deadline=units.ms(2))
        assert assign_priority(message) is PriorityClass.PERIODIC

    def test_sporadic_with_3ms_deadline_is_urgent(self):
        assert assign_priority(sporadic(units.ms(3))) is PriorityClass.URGENT

    def test_sporadic_below_3ms_is_urgent(self):
        assert assign_priority(sporadic(units.ms(1))) is PriorityClass.URGENT

    @pytest.mark.parametrize("deadline_ms", [20, 40, 80, 160])
    def test_sporadic_between_20_and_160ms_is_priority_2(self, deadline_ms):
        assert assign_priority(sporadic(units.ms(deadline_ms))) is \
            PriorityClass.SPORADIC

    def test_sporadic_just_above_3ms_is_priority_2(self):
        assert assign_priority(sporadic(units.ms(5))) is PriorityClass.SPORADIC

    def test_sporadic_above_160ms_is_background(self):
        assert assign_priority(sporadic(units.ms(200))) is \
            PriorityClass.BACKGROUND

    def test_sporadic_without_deadline_is_background(self):
        assert assign_priority(sporadic(None)) is PriorityClass.BACKGROUND
