"""FIFO and strict-priority queue disciplines."""

import pytest

from repro import PriorityClass
from repro.errors import BufferOverflowError
from repro.shaping import FifoQueue, QueuedItem, StrictPriorityQueues


def item(size=1000, priority=PriorityClass.PERIODIC, time=0.0, payload=None):
    return QueuedItem(size=size, enqueue_time=time, priority=priority,
                      payload=payload)


class TestFifoQueue:
    def test_fifo_order(self):
        queue = FifoQueue()
        queue.push(item(payload="a"))
        queue.push(item(payload="b"))
        assert queue.pop().payload == "a"
        assert queue.pop().payload == "b"

    def test_pop_empty_returns_none(self):
        assert FifoQueue().pop() is None

    def test_occupancy_tracks_bits(self):
        queue = FifoQueue()
        queue.push(item(size=100))
        queue.push(item(size=200))
        assert queue.occupancy == 300
        queue.pop()
        assert queue.occupancy == 200

    def test_max_occupancy(self):
        queue = FifoQueue()
        queue.push(item(size=100))
        queue.push(item(size=200))
        queue.pop()
        queue.pop()
        assert queue.max_occupancy == 300

    def test_overflow_drops_by_default(self):
        queue = FifoQueue(capacity=150)
        assert queue.push(item(size=100)) is True
        assert queue.push(item(size=100)) is False
        assert queue.drops == 1
        assert len(queue) == 1

    def test_overflow_can_raise(self):
        queue = FifoQueue(capacity=150, drop_on_overflow=False)
        queue.push(item(size=100))
        with pytest.raises(BufferOverflowError):
            queue.push(item(size=100))

    def test_peek_does_not_remove(self):
        queue = FifoQueue()
        queue.push(item(payload="a"))
        assert queue.peek().payload == "a"
        assert len(queue) == 1

    def test_is_empty(self):
        queue = FifoQueue()
        assert queue.is_empty
        queue.push(item())
        assert not queue.is_empty

    def test_items_snapshot(self):
        queue = FifoQueue()
        queue.push(item(payload="a"))
        queue.push(item(payload="b"))
        assert [entry.payload for entry in queue.items()] == ["a", "b"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FifoQueue(capacity=0)


class TestStrictPriorityQueues:
    def test_higher_priority_served_first(self):
        queues = StrictPriorityQueues()
        queues.push(item(priority=PriorityClass.BACKGROUND, payload="bg"))
        queues.push(item(priority=PriorityClass.URGENT, payload="urgent"))
        queues.push(item(priority=PriorityClass.PERIODIC, payload="per"))
        assert queues.pop().payload == "urgent"
        assert queues.pop().payload == "per"
        assert queues.pop().payload == "bg"

    def test_fifo_within_a_class(self):
        queues = StrictPriorityQueues()
        queues.push(item(priority=PriorityClass.URGENT, payload="first"))
        queues.push(item(priority=PriorityClass.URGENT, payload="second"))
        assert queues.pop().payload == "first"
        assert queues.pop().payload == "second"

    def test_pop_empty_returns_none(self):
        assert StrictPriorityQueues().pop() is None

    def test_peek_matches_pop(self):
        queues = StrictPriorityQueues()
        queues.push(item(priority=PriorityClass.SPORADIC, payload="x"))
        assert queues.peek().payload == "x"
        assert len(queues) == 1

    def test_total_and_per_class_occupancy(self):
        queues = StrictPriorityQueues()
        queues.push(item(size=100, priority=PriorityClass.URGENT))
        queues.push(item(size=200, priority=PriorityClass.BACKGROUND))
        assert queues.occupancy == 300
        assert queues.occupancy_of(PriorityClass.URGENT) == 100
        assert queues.occupancy_of(PriorityClass.BACKGROUND) == 200

    def test_per_class_capacity_and_drops(self):
        queues = StrictPriorityQueues(capacity_per_class=150)
        assert queues.push(item(size=100, priority=PriorityClass.URGENT))
        assert not queues.push(item(size=100, priority=PriorityClass.URGENT))
        # Other classes still have room.
        assert queues.push(item(size=100, priority=PriorityClass.PERIODIC))
        assert queues.drops == 1

    def test_max_occupancy_aggregates_class_maxima(self):
        queues = StrictPriorityQueues()
        queues.push(item(size=100, priority=PriorityClass.URGENT))
        queues.push(item(size=300, priority=PriorityClass.BACKGROUND))
        queues.pop()
        queues.pop()
        assert queues.max_occupancy == 400

    def test_is_empty(self):
        queues = StrictPriorityQueues()
        assert queues.is_empty
        queues.push(item())
        assert not queues.is_empty

    def test_queue_accessor(self):
        queues = StrictPriorityQueues()
        queues.push(item(priority=PriorityClass.SPORADIC))
        assert len(queues.queue(PriorityClass.SPORADIC)) == 1
        assert len(queues.queue(PriorityClass.URGENT)) == 0


class TestSharedQueueInterface:
    """FifoQueue and StrictPriorityQueues expose one egress-queue surface.

    The simulator (``EthernetNetworkSimulator.run``) reads these members
    without ``getattr`` fallbacks, so both disciplines must keep them.
    """

    MEMBERS = ("push", "pop", "peek", "is_empty", "occupancy",
               "max_occupancy", "drops", "__len__")

    @pytest.mark.parametrize("factory", [
        lambda: FifoQueue(),
        lambda: StrictPriorityQueues(),
    ], ids=["fifo", "strict-priority"])
    def test_uniform_members(self, factory):
        queue = factory()
        for member in self.MEMBERS:
            assert hasattr(queue, member), member
        assert queue.is_empty
        assert queue.occupancy == 0.0
        assert queue.max_occupancy == 0.0
        assert queue.drops == 0
        assert len(queue) == 0
        assert queue.pop() is None
        assert queue.peek() is None

    @pytest.mark.parametrize("factory", [
        lambda: FifoQueue(),
        lambda: StrictPriorityQueues(),
    ], ids=["fifo", "strict-priority"])
    def test_max_occupancy_tracks_peak_after_drain(self, factory):
        queue = factory()
        queue.push(item(size=100))
        queue.push(item(size=200))
        while queue.pop() is not None:
            pass
        assert queue.occupancy == 0.0
        assert queue.max_occupancy >= 300.0

    def test_queues_accept_any_sized_prioritised_item(self):
        # Frames are queued directly (no QueuedItem wrapper): anything
        # carrying `size` and `priority` must be accepted.
        class Sized:
            size = 64.0
            priority = PriorityClass.URGENT

        for queue in (FifoQueue(), StrictPriorityQueues()):
            payload = Sized()
            assert queue.push(payload)
            assert queue.peek() is payload
            assert queue.pop() is payload
