"""Token-bucket shapers."""

import pytest

from repro import Message, units
from repro.errors import ConfigurationError
from repro.shaping import FlowShaper, TokenBucket


class TestTokenBucket:
    def test_starts_full_by_default(self):
        bucket = TokenBucket(bucket_size=1000, token_rate=1e6)
        assert bucket.tokens_at(0.0) == 1000

    def test_initial_tokens_can_be_lower(self):
        bucket = TokenBucket(1000, 1e6, initial_tokens=200)
        assert bucket.tokens_at(0.0) == 200

    def test_initial_tokens_clamped_to_bucket(self):
        bucket = TokenBucket(1000, 1e6, initial_tokens=5000)
        assert bucket.tokens_at(0.0) == 1000

    def test_refill_is_linear_and_capped(self):
        bucket = TokenBucket(1000, 1e6, initial_tokens=0)
        assert bucket.tokens_at(0.0005) == pytest.approx(500)
        assert bucket.tokens_at(0.01) == 1000

    def test_consume_removes_tokens(self):
        bucket = TokenBucket(1000, 1e6)
        bucket.consume(600, 0.0)
        assert bucket.tokens_at(0.0) == pytest.approx(400)

    def test_consume_non_conforming_raises(self):
        bucket = TokenBucket(1000, 1e6, initial_tokens=0)
        with pytest.raises(ConfigurationError):
            bucket.consume(500, 0.0)

    def test_conforms(self):
        bucket = TokenBucket(1000, 1e6, initial_tokens=0)
        assert not bucket.conforms(500, 0.0)
        assert bucket.conforms(500, 0.0006)

    def test_earliest_conforming_time_when_already_conforming(self):
        bucket = TokenBucket(1000, 1e6)
        assert bucket.earliest_conforming_time(500, 1.0) == 1.0

    def test_earliest_conforming_time_waits_for_refill(self):
        bucket = TokenBucket(1000, 1e6, initial_tokens=0)
        assert bucket.earliest_conforming_time(500, 0.0) == \
            pytest.approx(0.0005)

    def test_packet_bigger_than_bucket_never_conforms(self):
        bucket = TokenBucket(1000, 1e6)
        with pytest.raises(ConfigurationError):
            bucket.earliest_conforming_time(2000, 0.0)

    def test_time_going_backwards_rejected(self):
        bucket = TokenBucket(1000, 1e6)
        bucket.consume(100, 1.0)
        with pytest.raises(ConfigurationError):
            bucket.tokens_at(0.5)

    def test_arrival_curve_matches_parameters(self):
        curve = TokenBucket(1000, 1e6).arrival_curve()
        assert curve.burst == 1000
        assert curve.rate == 1e6

    def test_for_message_uses_paper_sizing(self):
        message = Message.periodic("nav", period=units.ms(20),
                                   size=units.words1553(8),
                                   source="a", destination="b")
        bucket = TokenBucket.for_message(message)
        assert bucket.bucket_size == message.size
        assert bucket.token_rate == pytest.approx(message.rate)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(0, 1e6)
        with pytest.raises(ConfigurationError):
            TokenBucket(1000, 0)
        with pytest.raises(ConfigurationError):
            TokenBucket(1000, 1e6, initial_tokens=-1)


class TestFlowShaper:
    def test_release_immediately_when_tokens_available(self):
        shaper = FlowShaper("nav", TokenBucket(1000, 1e6))
        shaper.submit(size=500, time=0.0, payload="frame")
        assert shaper.next_release(0.0) == 0.0
        released = shaper.release(0.0)
        assert released.payload == "frame"
        assert shaper.backlog == 0

    def test_backpressure_when_tokens_missing(self):
        shaper = FlowShaper("nav", TokenBucket(1000, 1e6, initial_tokens=0))
        shaper.submit(size=1000, time=0.0)
        assert shaper.next_release(0.0) == pytest.approx(0.001)

    def test_fifo_order_between_packets(self):
        shaper = FlowShaper("nav", TokenBucket(1000, 1e6))
        shaper.submit(size=1000, time=0.0, payload="first")
        shaper.submit(size=1000, time=0.0, payload="second")
        first_release = shaper.next_release(0.0)
        assert shaper.release(first_release).payload == "first"
        second_release = shaper.next_release(first_release)
        assert second_release > first_release
        assert shaper.release(second_release).payload == "second"

    def test_output_conforms_to_the_arrival_curve(self):
        """Cumulative released bits over any window never exceed b + r*t."""
        bucket = TokenBucket(1000, 1e6)
        shaper = FlowShaper("nav", bucket)
        releases = []
        time = 0.0
        for __ in range(20):
            shaper.submit(size=800, time=time)
            release_time = shaper.next_release(time)
            shaper.release(release_time)
            releases.append((release_time, 800))
            time = release_time
        for start_index in range(len(releases)):
            for end_index in range(start_index, len(releases)):
                window = releases[end_index][0] - releases[start_index][0]
                volume = sum(size for __, size
                             in releases[start_index:end_index + 1])
                assert volume <= 1000 + 1e6 * window + 1e-6

    def test_next_release_of_empty_backlog_is_none(self):
        shaper = FlowShaper("nav", TokenBucket(1000, 1e6))
        assert shaper.next_release(0.0) is None

    def test_release_from_empty_backlog_raises(self):
        shaper = FlowShaper("nav", TokenBucket(1000, 1e6))
        with pytest.raises(ConfigurationError):
            shaper.release(0.0)
