#!/usr/bin/env python3
"""Multi-hop graph topologies: load, route, bound.

The paper analyses a single switched multiplexer; this example shows the
repository's generalisation to arbitrary multi-hop graphs.  It loads the
diamond topology document from ``examples/topologies/diamond.json`` (two
equal-cost two-switch branches between the entry and exit switches),
routes the synthetic case-study traffic with the deterministic shortest
-path engine, and computes per-flow end-to-end delay bounds by
concatenating the per-hop left-over service curves — the blind
-multiplexing generalisation of the paper's single-point formula, with
the store-and-forward packetisation terms added per hop.

Run with::

    python examples/multihop_graph.py
"""

from pathlib import Path

from repro.analysis.multihop import GraphPathAnalysis
from repro.analysis.validation import wire_level_messages
from repro.reporting import format_ms, render_table
from repro.topology import RoutingEngine, load_topology_file
from repro.workloads import RealCaseParameters, generate_real_case

TOPOLOGY_FILE = Path(__file__).resolve().parent / "topologies" / "diamond.json"


def main() -> None:
    spec = load_topology_file(TOPOLOGY_FILE).validated()
    print(f"loaded {spec.name}: {len(spec.end_systems)} end systems, "
          f"{len(spec.switches)} switches, {len(spec.links)} links")

    # The deterministic routing engine: same shortest path in every
    # process, ECMP ties broken lexicographically.
    engine = RoutingEngine(spec)
    sample = engine.shortest_path("station-00", "station-04")
    print(f"route station-00 -> station-04: {' -> '.join(sample)}")

    # The synthetic case-study traffic, analysed at wire level (framing
    # overheads included) along each flow's routed path.
    message_set = generate_real_case(RealCaseParameters(station_count=8),
                                     seed=7)
    wire = wire_level_messages(message_set)
    for policy in ("fcfs", "strict-priority"):
        outcome = GraphPathAnalysis(spec, policy=policy).analyze(wire)
        rows = [(cls.label, format_ms(bound.delay), len(bound.hops),
                 " -> ".join(bound.path))
                for cls, bound in sorted(outcome.worst_per_class().items())]
        print(render_table(
            ["class", "worst bound", "hops", "worst path"], rows,
            title=f"Per-class worst end-to-end bounds ({policy})"))


if __name__ == "__main__":
    main()
