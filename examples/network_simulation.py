#!/usr/bin/env python3
"""Simulate the switched Ethernet network and validate the analytic bounds.

Builds the single-switch star connecting the case-study stations, runs the
frame-level discrete-event simulation under the adversarial synchronised
release scenario for both multiplexing policies, and checks that every
analytic end-to-end bound dominates the worst simulated delay.

Run with::

    python examples/network_simulation.py
"""

from repro import EthernetNetworkSimulator, generate_real_case, units
from repro.analysis.validation import star_for_message_set, validate_bounds
from repro.flows.priorities import PriorityClass
from repro.reporting import format_ms, render_table, yes_no


def main() -> None:
    message_set = generate_real_case()
    network = star_for_message_set(message_set)
    print(f"Topology: {len(network.stations)} stations around "
          f"{len(network.switches)} switch, "
          f"{len(network.links())} full-duplex 10 Mbps links\n")

    # Raw simulation results for the strict-priority policy -----------------
    simulator = EthernetNetworkSimulator(network, message_set.messages,
                                         policy="strict-priority",
                                         scenario="synchronized", seed=1)
    results = simulator.run(duration=units.ms(320))
    print(f"Simulated 320 ms: {results.instances_delivered}/"
          f"{results.instances_sent} instances delivered, "
          f"{results.frames_dropped} frames dropped")
    busiest = max(results.link_utilization.items(), key=lambda item: item[1])
    print(f"Busiest link: {busiest[0]} at {busiest[1] * 100:.1f} % "
          f"utilisation\n")

    class_rows = []
    for cls in PriorityClass:
        summary = results.class_summary(cls)
        if summary.count == 0:
            continue
        class_rows.append((cls.label, summary.count,
                           format_ms(summary.mean), format_ms(summary.p99),
                           format_ms(summary.maximum)))
    print(render_table(
        ["priority class", "instances", "mean delay", "p99 delay",
         "worst delay"],
        class_rows, title="Simulated delays (strict priority, synchronised)"))

    # Bound-vs-simulation validation -----------------------------------------
    validation_rows = [
        (row.policy, row.priority.name, format_ms(row.analytic_bound),
         format_ms(row.simulated_worst), f"{row.tightness * 100:.0f} %",
         yes_no(row.bound_holds))
        for row in validate_bounds(message_set,
                                   simulation_duration=units.ms(320))
    ]
    print(render_table(
        ["policy", "class", "analytic bound", "simulated worst",
         "tightness", "bound holds"],
        validation_rows, title="Analytic bounds vs simulated worst case"))


if __name__ == "__main__":
    main()
