#!/usr/bin/env python3
"""The paper's case study: Figure 1 on the synthetic military message set.

Generates the seeded "real case" avionics traffic (see
``repro.workloads.realcase``), runs the paper's single-multiplexer analysis
at 10 Mbps and renders:

* the per-class delay-bound table (Figure 1's data),
* a text bar chart comparing FCFS and strict-priority bounds with the class
  constraints,
* the capacity sweep showing that 100 Mbps plain FCFS would also work, but
  10 Mbps needs the priority handling (the paper's central argument).

Run with::

    python examples/avionics_case_study.py
"""

from repro import PaperCaseStudy, generate_real_case, units
from repro.analysis import fcfs_violation_table
from repro.reporting import format_ms, render_bar_chart, render_table, yes_no


def main() -> None:
    message_set = generate_real_case()
    summary = message_set.summary()
    print(f"Synthetic case study: {summary['messages']} messages "
          f"({summary['periodic']} periodic, {summary['sporadic']} sporadic) "
          f"over {summary['stations']} stations, "
          f"aggregate rate {summary['total_rate_bps'] / 1e3:.0f} kbps\n")

    study = PaperCaseStudy(message_set)
    rows = study.figure1_rows()

    # Figure 1 as a table -------------------------------------------------
    table_rows = [
        (row.priority.label, row.message_count, format_ms(row.deadline),
         format_ms(row.fcfs_bound), yes_no(row.fcfs_meets_deadline),
         format_ms(row.priority_bound), yes_no(row.priority_meets_deadline))
        for row in rows
    ]
    print(render_table(
        ["priority class", "msgs", "constraint", "FCFS bound", "ok?",
         "priority bound", "ok?"],
        table_rows,
        title="Figure 1 - Delay bounds for the two approaches (10 Mbps)"))

    # Figure 1 as a bar chart ----------------------------------------------
    labels, values, markers = [], [], {}
    for index, row in enumerate(rows):
        labels.append(f"{row.priority.name} / FCFS")
        values.append(round(units.to_ms(row.fcfs_bound), 3))
        labels.append(f"{row.priority.name} / priority")
        values.append(round(units.to_ms(row.priority_bound), 3))
        if row.deadline is not None:
            markers[2 * index] = units.to_ms(row.deadline)
            markers[2 * index + 1] = units.to_ms(row.deadline)
    print(render_bar_chart(labels, values, unit="ms",
                           title="Delay bounds ('|' marks the constraint)",
                           markers=markers))

    # Headline claims -------------------------------------------------------
    print("FCFS violates at least one constraint:    ",
          study.fcfs_violates_constraints())
    print("Priority respects every constraint:       ",
          study.priority_meets_all_constraints())
    print("Urgent-class priority bound below 3 ms:   ",
          study.urgent_priority_bound_below_3ms())
    print("Periodic priority bound below FCFS bound: ",
          study.periodic_priority_bound_below_fcfs())
    print()

    # Capacity sweep ---------------------------------------------------------
    sweep_rows = []
    for row in fcfs_violation_table(message_set):
        sweep_rows.append((
            f"{row.capacity / 1e6:.0f} Mbps", row.priority.name,
            format_ms(row.deadline), format_ms(row.fcfs_bound),
            row.fcfs_violated_messages, format_ms(row.priority_bound),
            row.priority_violated_messages))
    print(render_table(
        ["capacity", "class", "constraint", "FCFS bound", "FCFS violations",
         "priority bound", "priority violations"],
        sweep_rows, title="Constraint violations vs link capacity"))


if __name__ == "__main__":
    main()
