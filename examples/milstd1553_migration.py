#!/usr/bin/env python3
"""Migrating from MIL-STD-1553B to switched Ethernet.

The scenario of the paper: the same avionics message set is carried today by
a MIL-STD-1553B bus (1 Mbps, 160 ms major frame, 20 ms minor frames) and is
to be migrated to Full-Duplex Switched Ethernet.  This example:

1. builds and validates the 1553B major-frame schedule and prints its
   per-minor-frame utilisation,
2. simulates the bus and reports observed response times and bus load,
3. compares, per priority class, the worst-case response times on 1553B with
   the delay bounds on 10 Mbps Ethernet under FCFS and strict-priority
   multiplexing.

Run with::

    python examples/milstd1553_migration.py
"""

from repro import MajorFrameSchedule, Milstd1553BusSimulator, generate_real_case, units
from repro.analysis import technology_comparison
from repro.milstd1553 import Milstd1553Analysis
from repro.reporting import format_ms, render_table, yes_no


def main() -> None:
    message_set = generate_real_case()

    # 1. The cyclic schedule -------------------------------------------------
    schedule = MajorFrameSchedule(message_set)
    schedule.validate()
    rows = [(index, format_ms(duration), f"{utilization * 100:.1f} %")
            for index, (duration, utilization)
            in enumerate(zip(schedule.minor_frame_durations(),
                             schedule.utilizations()))]
    print(render_table(
        ["minor frame", "worst-case busy time", "utilisation"],
        rows, title="MIL-STD-1553B major frame (160 ms / 8 x 20 ms)"))
    print(f"Polled terminals: {len(schedule.polled_terminals())}, "
          f"periodic messages scheduled: "
          f"{len(message_set.periodic())}\n")

    # 2. Bus simulation --------------------------------------------------------
    simulator = Milstd1553BusSimulator(message_set, schedule=schedule,
                                       sporadic_scenario="greedy")
    results = simulator.run(duration=units.ms(640))
    print(f"Simulated 640 ms of bus operation: "
          f"utilisation {results.bus_utilization * 100:.1f} %, "
          f"{results.instances_delivered}/{results.instances_released} "
          f"instances delivered, "
          f"{results.minor_frame_overruns} minor-frame overruns\n")

    analysis = Milstd1553Analysis(schedule)
    worst = max(analysis.all_bounds().values(), key=lambda b: b.bound)
    print(f"Worst analytic 1553B response time: {format_ms(worst.bound)} "
          f"({worst.name})\n")

    # 3. Technology comparison ---------------------------------------------------
    comparison_rows = [
        (row.priority.label, format_ms(row.deadline),
         format_ms(row.milstd1553_bound), yes_no(row.milstd1553_ok),
         format_ms(row.ethernet_fcfs_bound), yes_no(row.fcfs_ok),
         format_ms(row.ethernet_priority_bound), yes_no(row.priority_ok))
        for row in technology_comparison(message_set)
    ]
    print(render_table(
        ["priority class", "constraint", "1553B bound", "ok?",
         "Ethernet FCFS", "ok?", "Ethernet priority", "ok?"],
        comparison_rows,
        title="Worst-case response times: 1553B vs switched Ethernet"))
    print("Note: the 3 ms urgent class cannot be guaranteed by 20 ms polling "
          "on 1553B, nor by plain FCFS Ethernet at 10 Mbps; it is met once "
          "802.1p strict priorities are used - the paper's argument for "
          "priority handling.")


if __name__ == "__main__":
    main()
