#!/usr/bin/env python3
"""AFDX-style virtual links over a dual-switch topology.

The paper motivates switched Ethernet for military aircraft by the A380's
AFDX experience.  This example describes a small flight-control traffic set
with the AFDX vocabulary (virtual links with a BAG and a maximal frame
size), routes it over a two-switch federated topology and computes the
end-to-end delay bounds per flow with the strict-priority multiplexers,
including the burst inflation a flow picks up at each hop.

Run with::

    python examples/afdx_virtual_links.py
"""

from repro import EndToEndAnalysis, units
from repro.flows import VirtualLink
from repro.reporting import format_ms, render_table, yes_no
from repro.topology import dual_switch_topology


def build_virtual_links() -> list[VirtualLink]:
    """A handful of flight-control virtual links across the two bays."""
    return [
        VirtualLink("vl-fcs-commands", bag=units.ms(2),
                    max_frame_size=units.bytes_(200),
                    source="station-00", destination="station-04",
                    deadline=units.ms(3)),
        VirtualLink("vl-ins-nav", bag=units.ms(8),
                    max_frame_size=units.bytes_(400),
                    source="station-01", destination="station-05",
                    deadline=units.ms(20)),
        VirtualLink("vl-air-data", bag=units.ms(16),
                    max_frame_size=units.bytes_(300),
                    source="station-02", destination="station-04",
                    deadline=units.ms(40)),
        VirtualLink("vl-engine-status", bag=units.ms(32),
                    max_frame_size=units.bytes_(600),
                    source="station-06", destination="station-01",
                    deadline=units.ms(80)),
        VirtualLink("vl-maintenance", bag=units.ms(128),
                    max_frame_size=units.bytes_(1500),
                    source="station-07", destination="station-03",
                    deadline=None),
    ]


def main() -> None:
    links = build_virtual_links()
    network = dual_switch_topology(stations_per_switch=4,
                                   capacity=units.mbps(10))
    messages = [vl.to_message() for vl in links]

    print("Virtual links:")
    for vl in links:
        print(f"  {vl.name}: BAG {format_ms(vl.bag)}, "
              f"s_max {vl.max_frame_size / 8:.0f} bytes, "
              f"rate {vl.rate / 1e3:.1f} kbps, standard BAG: "
              f"{yes_no(vl.is_standard_bag)}")
    print()

    analysis = EndToEndAnalysis(network, policy="strict-priority",
                                burst_propagation=True)
    result = analysis.analyze(messages)

    rows = []
    for bound in result:
        hops = " -> ".join(hop.node for hop in bound.hops)
        rows.append((bound.name, bound.priority.name, hops,
                     format_ms(bound.deadline), format_ms(bound.total_delay),
                     yes_no(bound.meets_deadline)))
    print(render_table(
        ["virtual link", "class", "multiplexing points", "deadline",
         "end-to-end bound", "ok?"],
        rows, title="End-to-end bounds over the dual-switch topology"))

    print("All deadlines met:", result.all_deadlines_met)


if __name__ == "__main__":
    main()
