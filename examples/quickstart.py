#!/usr/bin/env python3
"""Quickstart: delay bounds for a handful of shaped avionics messages.

This example builds a small message set by hand (two stations exchanging
periodic sensor data, one urgent alarm and one background transfer), applies
the paper's two multiplexing policies on a 10 Mbps link and prints the
per-class worst-case delay bounds next to the real-time constraints.

Run with::

    python examples/quickstart.py
"""

from repro import (
    FcfsMultiplexerAnalysis,
    Message,
    MessageSet,
    PaperCaseStudy,
    StrictPriorityMultiplexerAnalysis,
    units,
)
from repro.reporting import format_ms, render_table, yes_no


def build_message_set() -> MessageSet:
    """A minimal, hand-written avionics message set."""
    return MessageSet([
        # Periodic sensor samples: 20 ms inertial data, 80 ms air data.
        Message.periodic("ins-attitude", period=units.ms(20),
                         size=units.words1553(8),
                         source="nav-computer", destination="display"),
        Message.periodic("air-data", period=units.ms(80),
                         size=units.words1553(16),
                         source="air-data-unit", destination="nav-computer"),
        # An urgent discrete alarm with a 3 ms response-time requirement.
        Message.sporadic("master-warning", min_interarrival=units.ms(20),
                         size=units.words1553(2),
                         source="warning-panel", destination="display",
                         deadline=units.ms(3)),
        # A sporadic status report with a 40 ms requirement.
        Message.sporadic("engine-status", min_interarrival=units.ms(40),
                         size=units.words1553(24),
                         source="engine-fadec", destination="nav-computer",
                         deadline=units.ms(40)),
        # Background maintenance data, no hard constraint.
        Message.sporadic("maintenance-log", min_interarrival=units.ms(160),
                         size=units.words1553(64),
                         source="engine-fadec", destination="maintenance",
                         deadline=None),
    ], name="quickstart")


def main() -> None:
    message_set = build_message_set()
    capacity = units.mbps(10)
    technology_delay = units.us(16)

    # Direct use of the two multiplexer analyses -------------------------
    fcfs = FcfsMultiplexerAnalysis(capacity, technology_delay)
    priority = StrictPriorityMultiplexerAnalysis(capacity, technology_delay)
    print("Single FCFS bound for every packet:",
          format_ms(fcfs.bound(message_set.messages).delay))
    for cls, bound in priority.class_bounds(message_set.messages).items():
        print(f"Strict-priority bound for {cls.label}:",
              format_ms(bound.delay))
    print()

    # The paper's Figure 1 view ------------------------------------------
    study = PaperCaseStudy(message_set, capacity=capacity,
                           technology_delay=technology_delay)
    rows = [
        (row.priority.label, row.message_count, format_ms(row.deadline),
         format_ms(row.fcfs_bound), yes_no(row.fcfs_meets_deadline),
         format_ms(row.priority_bound), yes_no(row.priority_meets_deadline))
        for row in study.figure1_rows()
    ]
    print(render_table(
        ["priority class", "msgs", "constraint", "FCFS bound", "ok?",
         "priority bound", "ok?"],
        rows, title="Delay bounds for the two approaches (quickstart set)"))


if __name__ == "__main__":
    main()
