#!/usr/bin/env python3
"""End-to-end chaos smoke of ``repro serve`` (the CI ``serve-smoke`` job).

Drives a real server subprocess through the full robustness contract:

1. start ``repro serve`` on an ephemeral port with a journal and a
   deterministic fault plan (``req-exc``, ``req-slow``, ``journal-eio``,
   ``journal-torn``), parse the bound port off the startup line;
2. fire a sequential fault-injected request storm and assert every
   request is answered, degraded or shed — never hung (a client-side
   socket timeout is the failure detector) — with the injected faults
   surfacing as their documented status codes;
3. SIGKILL the server mid-life, restart it on the same journal and
   assert the recovered state and bounds fingerprints are **byte
   identical** to the last acknowledged pre-kill state (the torn journal
   line is survivable because its flow was removed again before the
   kill — at-most-once semantics);
4. SIGTERM the restarted server and assert it drains and exits 0.

Run from the repository root::

    python tools/serve_smoke.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_ROOT / "src"))

from repro.serve import ServeClient  # noqa: E402

#: Client-side timeout: any request slower than this counts as hung.
CLIENT_TIMEOUT = 10.0

#: The deterministic chaos plan, keyed by request sequence number (POST
#: requests only; health/readiness GETs never consume a sequence).  The
#: storm below is built so each fault lands on the intended request.
#: The req-slow sleep (0.4s) sits between the 0.25s deadline budget
#: (so the request degrades) and the 0.5s p99 shed threshold (so the
#: storm's tail is answered, not shed).
FAULT_PLAN = "req-exc@5,journal-eio@7,journal-torn@9,req-slow@12:0.4"


def fail(message: str) -> None:
    print(f"serve-smoke: FAIL: {message}")
    sys.exit(1)


def start_server(journal: Path, *, faults: str | None = None
                 ) -> tuple[subprocess.Popen, ServeClient, str]:
    command = [sys.executable, "-m", "repro", "serve",
               "--scenario", "paper-real-case",
               "--policy", "strict-priority",
               "--host", "127.0.0.1", "--port", "0",
               "--no-store", "--journal", str(journal)]
    if faults:
        command += ["--faults", faults]
    env = dict(os.environ, PYTHONPATH=str(_ROOT / "src"),
               PYTHONUNBUFFERED="1")
    process = subprocess.Popen(command, cwd=_ROOT, env=env, text=True,
                               stdout=subprocess.PIPE,
                               stderr=subprocess.STDOUT)
    line = process.stdout.readline().strip()
    print(f"serve-smoke: startup: {line}")
    match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
    if not match:
        process.kill()
        fail(f"could not parse the bound port from {line!r}")
    client = ServeClient(f"http://127.0.0.1:{match.group(1)}",
                         timeout=CLIENT_TIMEOUT)
    body = client.wait_ready(timeout=30.0)
    if not body.get("ready"):
        fail(f"server came up not ready: {body}")
    return process, client, line


def flow(name: str) -> dict:
    return {"name": name, "kind": "sporadic", "period": 1.0,
            "size": 100.0, "source": "station-00",
            "destination": "station-01", "deadline": None}


def expect(label: str, got, wanted) -> None:
    if got != wanted:
        fail(f"{label}: expected {wanted!r}, got {got!r}")
    print(f"serve-smoke: ok: {label}")


def storm(client: ServeClient) -> None:
    """The fault-injected request storm (sequence numbers matter)."""
    status, body, _ = client.check()                              # seq 1
    expect("seq 1 baseline check", status, 200)
    status, body, _ = client.admit(flow("smoke-a"), force=True)   # seq 2
    expect("seq 2 admit smoke-a", (status, body["applied"]), (200, True))
    status, body, _ = client.admit(flow("smoke-b"), force=True)   # seq 3
    expect("seq 3 admit smoke-b", (status, body["applied"]), (200, True))
    status, body, _ = client.check(flow("smoke-whatif"))          # seq 4
    expect("seq 4 what-if check", status, 200)
    status, body, _ = client.admit(flow("smoke-x"), force=True)   # seq 5
    expect("seq 5 injected req-exc is a 500",
           (status, body.get("injected")), (500, True))
    status, body, _ = client.admit(flow("smoke-x"), force=True)   # seq 6
    expect("seq 6 retry after req-exc", (status, body["applied"]),
           (200, True))
    status, body, _ = client.admit(flow("smoke-y"), force=True)   # seq 7
    if status != 500 or "journal append failed" not in body.get("error", ""):
        fail(f"seq 7 journal-eio: expected a journal 500, got "
             f"{status} {body}")
    print("serve-smoke: ok: seq 7 journal-eio rolled back with a 500")
    status, body, _ = client.admit(flow("smoke-y"), force=True)   # seq 8
    expect("seq 8 retry after journal-eio", (status, body["applied"]),
           (200, True))
    status, body, _ = client.admit(flow("smoke-z"), force=True)   # seq 9
    expect("seq 9 admit under journal-torn is acknowledged",
           (status, body["applied"]), (200, True))
    status, body, _ = client.remove("smoke-z")                    # seq 10
    expect("seq 10 remove the torn-line flow",
           (status, body["applied"]), (200, True))
    status, body, _ = client.remove("smoke-b")                    # seq 11
    expect("seq 11 remove smoke-b", (status, body["applied"]), (200, True))
    status, body, _ = client.check()                              # seq 12
    if not (status == 200 and body.get("degraded")):
        fail(f"seq 12 req-slow: expected a degraded 200, got "
             f"{status} {body}")
    print("serve-smoke: ok: seq 12 req-slow degraded to cached bounds")
    # Let the worker finish the injected sleep so the next request is
    # served inside its own deadline budget instead of degrading too.
    time.sleep(1.0)
    status, body, _ = client.admit(flow("smoke-a"))               # seq 13
    expect("seq 13 duplicate admit is a 409", status, 409)
    status, body, _ = client.remove("never-admitted")             # seq 14
    expect("seq 14 unknown remove is a 404", status, 404)


def main() -> None:
    journal = Path(tempfile.mkdtemp(prefix="repro-serve-smoke-")) \
        / "journal"

    # -- phase 1: fault-injected storm ----------------------------------
    process, client, _ = start_server(journal, faults=FAULT_PLAN)
    try:
        started = time.monotonic()
        storm(client)
        print(f"serve-smoke: storm finished in "
              f"{time.monotonic() - started:.1f}s with no hung requests")
        # Wait out the req-slow worker sleep so the degraded check's
        # eventual completion is not racing the SIGKILL below.
        time.sleep(1.0)
        _, health, _ = client.health()
        pre_kill_state = health["state_fingerprint"]
        pre_kill_bounds = health["bounds_fingerprint"]
        pre_kill_flows = health["flow_count"]
        _, stats, _ = client.stats()
        print(f"serve-smoke: pre-kill: {pre_kill_flows} flows, "
              f"served={stats['served']} degraded={stats['degraded']} "
              f"errors={stats['errors']}")
        if stats["errors"] < 2:
            fail("expected at least the two injected 500s in the "
                 "error counter")
    finally:
        # -- phase 2: SIGKILL (no drain, no final checkpoint) -----------
        process.kill()
        process.wait(timeout=30)
    print("serve-smoke: SIGKILLed the server")

    # -- phase 3: restart + byte-identical journal recovery -------------
    process, client, line = start_server(journal)
    try:
        if "recovered" not in line:
            fail(f"restart did not report journal recovery: {line!r}")
        _, health, _ = client.health()
        expect("recovered state fingerprint is byte-identical",
               health["state_fingerprint"], pre_kill_state)
        expect("recovered bounds fingerprint is byte-identical",
               health["bounds_fingerprint"], pre_kill_bounds)
        expect("recovered flow count", health["flow_count"],
               pre_kill_flows)
        expect("recovered server is ready", health["ready"], True)
        status, body, _ = client.remove("smoke-a")
        expect("recovered server serves mutations",
               (status, body["applied"]), (200, True))
    except BaseException:
        process.kill()
        raise

    # -- phase 4: SIGTERM drains and exits 0 ----------------------------
    process.send_signal(signal.SIGTERM)
    try:
        code = process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        fail("SIGTERM did not drain within 30s")
    tail = process.stdout.read()
    print(f"serve-smoke: drain output: {tail.strip()}")
    expect("SIGTERM exits 0", code, 0)
    if "drained:" not in tail:
        fail(f"drain summary missing from output: {tail!r}")
    print("serve-smoke: PASS")


if __name__ == "__main__":
    main()
