#!/usr/bin/env python3
"""Docstring coverage gate: every public symbol documents itself.

Walks every module under ``repro`` and checks that

1. every module has a docstring (tier-1 also asserts this, but the gate
   reports all gaps in one run instead of failing at the first),
2. every name exported through an ``__all__`` — the package ``__init__``
   re-exports included — resolves to an object with a non-empty docstring
   (data exports such as constants and sub-module references are exempt:
   they cannot carry one),
3. every public method defined by an exported class has a docstring
   (dataclass/enum machinery and inherited members are exempt).

Run from anywhere: ``python tools/check_docstrings.py``; exits non-zero
and lists every undocumented symbol when the gate fails.  CI runs it next
to the docs-link check; ``tests/test_docs.py`` mirrors it in tier 1.
"""

from __future__ import annotations

import inspect
import pkgutil
import sys
from importlib import import_module
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

def _iter_modules() -> list[str]:
    """Every module under ``repro``, the top-level package included."""
    import repro

    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return names


def _missing_method_docstrings(owner: str, cls: type) -> list[str]:
    """Public methods *defined by* ``cls`` that lack a docstring.

    Underscore-prefixed names are skipped wholesale — that covers both
    private helpers and the dunders synthesised by dataclass/enum
    machinery, neither of which must carry a docstring.
    """
    problems = []
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        func = member
        if isinstance(member, (staticmethod, classmethod)):
            func = member.__func__
        elif isinstance(member, property):
            func = member.fget
        if not (inspect.isfunction(func) or inspect.ismethod(func)):
            continue
        if not (getattr(func, "__doc__", None) or "").strip():
            problems.append(f"{owner}.{cls.__name__}.{name} has no docstring")
    return problems


def undocumented_symbols() -> list[str]:
    """Every docstring gap the gate enforces, as human-readable lines."""
    problems: list[str] = []
    for module_name in _iter_modules():
        module = import_module(module_name)
        if not (module.__doc__ or "").strip():
            problems.append(f"{module_name} has no module docstring")
        for export in getattr(module, "__all__", ()):
            obj = getattr(module, export, None)
            if obj is None:
                problems.append(
                    f"{module_name}.__all__ lists {export!r} but the "
                    f"attribute does not exist")
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue  # constants, sub-modules, enum values: no doc slot
            if not (obj.__doc__ or "").strip():
                problems.append(
                    f"{module_name}.{export} has no docstring")
            if inspect.isclass(obj):
                problems.extend(
                    _missing_method_docstrings(module_name, obj))
    return sorted(set(problems))


def main() -> int:
    problems = undocumented_symbols()
    for problem in problems:
        print(f"docstrings-check: {problem}", file=sys.stderr)
    if not problems:
        module_count = len(_iter_modules())
        print(f"docstrings-check: OK ({module_count} modules, every "
              f"public __all__ symbol documented)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
