#!/usr/bin/env python3
"""Machine-readable benchmark trajectory: write ``BENCH_report.json``.

The benchmark harness persists every exhibit as human-oriented tables
under ``benchmarks/results/``; CI wants one machine-readable summary it
can upload as an artifact and plot across runs.  This script distils the
key performance trajectory — simulation kernel events/second, analytic
sweep wall time, campaign memoization speedup and result-store warm-run
numbers — from those committed CSVs into a single JSON document.

Run after the benchmarks (``pytest benchmarks -q``)::

    python tools/bench_report.py [--output BENCH_report.json]

Missing inputs are reported in the JSON (``"missing"``) rather than
failing, so a partial benchmark run still produces a useful artifact.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"
DEFAULT_OUTPUT = "BENCH_report.json"


def _number(text: str) -> float | str:
    """Parse ``'809,379'`` / ``'1.08'`` / ``'141x'``-style cells."""
    cleaned = text.strip().rstrip("x%").replace(",", "").strip()
    try:
        return float(cleaned)
    except ValueError:
        return text.strip()


def _metric_rows(name: str) -> dict[str, str]:
    """A two-column ``metric,value`` CSV as a dict (empty if absent)."""
    path = RESULTS_DIR / f"{name}.csv"
    if not path.is_file():
        return {}
    with path.open(newline="") as handle:
        return {row["metric"]: row["value"]
                for row in csv.DictReader(handle)}


def _sim_throughput() -> dict:
    path = RESULTS_DIR / "sim_throughput.csv"
    if not path.is_file():
        return {}
    with path.open(newline="") as handle:
        return {row["policy"]: {
            "events_per_sec": _number(row["events_per_sec"]),
            "speedup_over_pre_rewrite": _number(row["speedup"]),
        } for row in csv.DictReader(handle)}


def build_report() -> dict:
    """The benchmark-trajectory document, section by section."""
    report: dict = {"missing": []}

    simulation = _sim_throughput()
    if simulation:
        report["simulation_kernel"] = simulation
    else:
        report["missing"].append("sim_throughput.csv")

    scaling = _metric_rows("perf_scaling")
    if scaling:
        report["analytic_sweep"] = {
            "wall_time_s": _number(scaling.get("wall_time_s", "")),
            "speedup_over_seed": _number(scaling.get("speedup", "")),
            "messages_at_64x": _number(scaling.get("messages_at_64x", "")),
        }
    else:
        report["missing"].append("perf_scaling.csv")

    campaign_path = RESULTS_DIR / "campaign.csv"
    if campaign_path.is_file():
        with campaign_path.open(newline="") as handle:
            report["campaign_memoization"] = list(csv.DictReader(handle))
    else:
        report["missing"].append("campaign.csv")

    store = _metric_rows("store_warm")
    if store:
        report["result_store"] = {
            "cold_s": _number(store.get("cold_s", "")),
            "warm_s": _number(store.get("warm_s", "")),
            "warm_speedup": _number(store.get("speedup", "")),
            "warm_recomputations": _number(
                store.get("warm_recomputations", "")),
            "warm_hit_rate_percent": _number(
                store.get("warm_hit_rate", "")),
        }
    else:
        report["missing"].append("store_warm.csv")

    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"where to write the JSON document "
                             f"(default: {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)
    report = build_report()
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")
    sections = sorted(key for key in report if key != "missing")
    print(f"bench-report: wrote {output} ({', '.join(sections)}"
          f"{'; missing: ' + ', '.join(report['missing']) if report['missing'] else ''})")
    return 0 if sections else 1


if __name__ == "__main__":
    raise SystemExit(main())
