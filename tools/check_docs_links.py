#!/usr/bin/env python3
"""Docs-link checker: everything our docs point at must exist.

Four rules, enforced in CI and by ``tests/test_docs.py``:

1. the documentation layer itself exists (``README.md``, ``DESIGN.md``);
2. every mention of ``README.md`` / ``DESIGN.md`` in a docstring or comment
   under ``src/`` resolves to a repo-root file;
3. every relative markdown link in the checked documents, and every
   backtick-quoted repo path (``src/...``, ``artifacts/...``, ...), points
   at an existing file or directory — links are resolved relative to the
   document that contains them, so the generated ``artifacts/REPORT.md``
   is checked against its own directory;
4. every ``#fragment`` of a relative markdown link resolves to a heading
   of the target document (GitHub anchor-slug rules: lowercase,
   punctuation dropped, spaces become hyphens).

Run from anywhere: ``python tools/check_docs_links.py``; exits non-zero and
lists the broken references when any rule fails.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The documentation layer that must exist (rule 1).
REQUIRED_DOCS = ("README.md", "DESIGN.md")

#: Generated docs checked for links/anchors when present (rules 3 and 4).
OPTIONAL_DOCS = ("artifacts/REPORT.md",)

#: Directories whose backtick-quoted paths are checked (rule 3).
CHECKED_PREFIXES = ("src/", "tests/", "benchmarks/", "examples/", "tools/",
                    "artifacts/", ".github/")

_MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_BACKTICK_PATH = re.compile(r"`([.\w/-]+)`")
_DOC_MENTION = re.compile(r"\b(README\.md|DESIGN\.md)\b")
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
_CODE_FENCE = re.compile(r"^(```|~~~)")


def heading_slug(text: str) -> str:
    """GitHub-style anchor slug of a markdown heading.

    Same algorithm as :func:`repro.reports.pipeline.heading_slug` (plus
    inline-code unwrapping), so the anchors the generated report emits are
    checkable by this script without importing the package.  Underscores
    are word characters and survive — ``t_techno`` slugs to ``t_techno``,
    as on GitHub — while ``*`` and other punctuation are dropped by the
    character filter.
    """
    text = re.sub(r"`([^`]*)`", r"\1", text)          # inline code markers
    return re.sub(r"[^\w\- ]", "", text.lower()).replace(" ", "-")


def _checked_docs(root: Path) -> list[Path]:
    """Every document whose links and anchors are validated."""
    docs = [root / name for name in REQUIRED_DOCS]
    docs.extend(root / name for name in OPTIONAL_DOCS)
    return [doc for doc in docs if doc.is_file()]


def _strip_fenced_blocks(markdown: str) -> str:
    """The document with fenced code blocks blanked out.

    Links and repo paths inside a ``` fence are illustrative, not real
    references, so they must not be validated (headings inside fences are
    likewise ignored by :func:`heading_slugs`).
    """
    kept: list[str] = []
    in_fence = False
    for line in markdown.splitlines():
        if _CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        kept.append("" if in_fence else line)
    return "\n".join(kept)


def heading_slugs(markdown: str) -> set[str]:
    """The anchor slugs of every heading of a markdown text.

    Headings inside fenced code blocks are ignored; duplicate headings get
    the ``-1``, ``-2``, ... suffixes GitHub appends.
    """
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in markdown.splitlines():
        if _CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        slug = heading_slug(match.group(1))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        slugs.add(slug if seen == 0 else f"{slug}-{seen}")
    return slugs


def missing_required_docs(root: Path = REPO_ROOT) -> list[str]:
    """Rule 1: the top-level documentation files that are absent."""
    return [name for name in REQUIRED_DOCS if not (root / name).is_file()]


def broken_docstring_references(root: Path = REPO_ROOT) -> list[str]:
    """Rule 2: ``src/`` files mentioning a doc that does not exist."""
    problems = []
    for path in sorted((root / "src").rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        for mention in set(_DOC_MENTION.findall(text)):
            if not (root / mention).is_file():
                problems.append(
                    f"{path.relative_to(root)}: references {mention} "
                    f"which does not exist")
    return problems


def _link_targets(doc: Path, text: str) -> set[tuple[str, str]]:
    """The ``(path, fragment)`` pairs a document references."""
    text = _strip_fenced_blocks(text)
    targets: set[tuple[str, str]] = set()
    for target in _MARKDOWN_LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path, _, fragment = target.partition("#")
        targets.add((path, fragment))
    for token in _BACKTICK_PATH.findall(text):
        if token.startswith(CHECKED_PREFIXES) and "*" not in token:
            targets.add((token, ""))
    return targets


def broken_doc_links(root: Path = REPO_ROOT) -> list[str]:
    """Rules 3 and 4: broken paths, repo references and anchors."""
    problems = []
    slug_cache: dict[Path, set[str]] = {}
    for doc in _checked_docs(root):
        name = doc.relative_to(root).as_posix()
        text = doc.read_text(encoding="utf-8")
        slug_cache[doc.resolve()] = heading_slugs(text)
        for path, fragment in sorted(_link_targets(doc, text)):
            if path:
                # Backtick repo paths anchor at the root; relative links
                # resolve from the document's own directory.
                base = root if path.startswith(CHECKED_PREFIXES) \
                    else doc.parent
                resolved = (base / path).resolve()
                if not resolved.exists():
                    problems.append(f"{name}: broken reference {path!r}")
                    continue
            else:
                resolved = doc.resolve()
            if not fragment:
                continue
            if resolved.suffix.lower() != ".md" or not resolved.is_file():
                problems.append(
                    f"{name}: anchor #{fragment} on non-markdown "
                    f"target {path!r}")
                continue
            if resolved not in slug_cache:
                slug_cache[resolved] = heading_slugs(
                    resolved.read_text(encoding="utf-8"))
            if fragment not in slug_cache[resolved]:
                problems.append(
                    f"{name}: broken anchor {path or name}#{fragment}")
    return problems


def main() -> int:
    problems = (
        [f"missing required doc: {name}"
         for name in missing_required_docs()]
        + broken_docstring_references()
        + broken_doc_links())
    for problem in problems:
        print(f"docs-check: {problem}", file=sys.stderr)
    if not problems:
        checked = [doc.relative_to(REPO_ROOT).as_posix()
                   for doc in _checked_docs(REPO_ROOT)]
        print(f"docs-check: OK ({', '.join(checked)} present, all "
              f"references and anchors resolve)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
