#!/usr/bin/env python3
"""Docs-link checker: the files our docs point at must exist.

Three rules, enforced in CI and by ``tests/test_docs.py``:

1. the documentation layer itself exists (``README.md``, ``DESIGN.md``);
2. every mention of ``README.md`` / ``DESIGN.md`` in a docstring or comment
   under ``src/`` resolves to a repo-root file;
3. every relative markdown link in ``README.md`` / ``DESIGN.md``, and every
   backtick-quoted repo path (``src/...``, ``examples/...``, ...), points
   at an existing file or directory.

Run from anywhere: ``python tools/check_docs_links.py``; exits non-zero and
lists the broken references when any rule fails.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The documentation layer that must exist (rule 1).
REQUIRED_DOCS = ("README.md", "DESIGN.md")

#: Directories whose backtick-quoted paths are checked (rule 3).
CHECKED_PREFIXES = ("src/", "tests/", "benchmarks/", "examples/", "tools/",
                    ".github/")

_MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)\)")
_BACKTICK_PATH = re.compile(r"`([.\w/-]+)`")
_DOC_MENTION = re.compile(r"\b(README\.md|DESIGN\.md)\b")


def missing_required_docs(root: Path = REPO_ROOT) -> list[str]:
    """Rule 1: the top-level documentation files that are absent."""
    return [name for name in REQUIRED_DOCS if not (root / name).is_file()]


def broken_docstring_references(root: Path = REPO_ROOT) -> list[str]:
    """Rule 2: ``src/`` files mentioning a doc that does not exist."""
    problems = []
    for path in sorted((root / "src").rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        for mention in set(_DOC_MENTION.findall(text)):
            if not (root / mention).is_file():
                problems.append(
                    f"{path.relative_to(root)}: references {mention} "
                    f"which does not exist")
    return problems


def broken_doc_links(root: Path = REPO_ROOT) -> list[str]:
    """Rule 3: broken relative links / repo paths inside the docs."""
    problems = []
    for name in REQUIRED_DOCS:
        doc = root / name
        if not doc.is_file():
            continue
        text = doc.read_text(encoding="utf-8")
        targets = set()
        for target in _MARKDOWN_LINK.findall(text):
            if not target.startswith(("http://", "https://", "mailto:")):
                targets.add(target)
        for token in _BACKTICK_PATH.findall(text):
            if token.startswith(CHECKED_PREFIXES) and "*" not in token:
                targets.add(token)
        for target in sorted(targets):
            if not (root / target).exists():
                problems.append(f"{name}: broken reference {target!r}")
    return problems


def main() -> int:
    problems = (
        [f"missing required doc: {name}"
         for name in missing_required_docs()]
        + broken_docstring_references()
        + broken_doc_links())
    for problem in problems:
        print(f"docs-check: {problem}", file=sys.stderr)
    if not problems:
        print(f"docs-check: OK ({', '.join(REQUIRED_DOCS)} present, "
              f"all references resolve)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
