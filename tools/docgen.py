#!/usr/bin/env python3
"""Executable documentation: fill ``<!-- repro:... -->`` spans.

Every quantitative statement in README.md / DESIGN.md is wrapped in a
placeholder span (HTML comments, so the committed docs render the value
while still marking where it came from)::

    <!-- repro:figure1.fcfs-bound -->3.318 ms<!-- /repro -->

The key names an entry of ``artifacts/values.json``, which ``repro report``
regenerates from the code on every run.  This script substitutes the
current value into each span:

* default mode rewrites the documents in place (run after
  ``repro report`` when the numbers move),
* ``--check`` (the CI mode) rewrites nothing and exits non-zero when any
  span is stale or references an unknown key — so a number in the docs can
  never silently drift from what the code computes.

Values may span multiple lines (DESIGN.md embeds the whole experiment
index table this way).  Run from anywhere:
``python tools/docgen.py [--check]``.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The documents scanned for placeholder spans.
DEFAULT_DOCS = ("README.md", "DESIGN.md")

#: Where ``repro report`` writes the value map.
DEFAULT_VALUES = "artifacts/values.json"

#: Benchmark-derived values (``bench.*`` keys), written by the committed
#: benchmark harness (``benchmarks/test_bench_store.py``).  Machine
#: timings are not byte-deterministic, so they live in their own file:
#: the docs are checked against the *committed* numbers, which only move
#: when a benchmark run is recommitted — exactly like the rest of
#: ``benchmarks/results/``.
DEFAULT_BENCH_VALUES = "benchmarks/results/BENCH_values.json"

#: Keys with this prefix carry machine timings: the default mode still
#: substitutes them, but ``--check`` only verifies they *exist* — a local
#: benchmark run refreshes the value file with jittery numbers, and
#: failing CI on timing jitter would make every benchmark run "dirty".
VOLATILE_PREFIX = "bench."

_SPAN = re.compile(
    r"<!--\s*repro:(?P<key>[A-Za-z0-9_.-]+)\s*-->"
    r"(?P<value>.*?)"
    r"<!--\s*/repro\s*-->",
    re.DOTALL)


def load_values(path: Path) -> dict[str, str]:
    """The key→value map produced by ``repro report``."""
    with path.open(encoding="utf-8") as handle:
        return json.load(handle)


def substitute(text: str, values: dict[str, str]
               ) -> tuple[str, list[str], list[str]]:
    """Fill every placeholder span of ``text``.

    Returns ``(new_text, stale_keys, unknown_keys)`` where *stale* keys had
    a value different from the current one.  Multi-line values keep the
    span's surrounding newline convention: a value ending in a newline is
    embedded with the closing marker on its own line.
    """
    stale: list[str] = []
    unknown: list[str] = []

    def replace(match: re.Match[str]) -> str:
        key = match.group("key")
        if key not in values:
            unknown.append(key)
            return match.group(0)
        current = values[key]
        embedded = f"\n{current}" if current.endswith("\n") \
            else current
        if match.group("value") != embedded:
            stale.append(key)
        return f"<!-- repro:{key} -->{embedded}<!-- /repro -->"

    return _SPAN.sub(replace, text), stale, unknown


def process_doc(doc: Path, values: dict[str, str], *,
                check: bool) -> list[str]:
    """Substitute one document; returns the problems found (check mode)."""
    text = doc.read_text(encoding="utf-8")
    new_text, stale, unknown = substitute(text, values)
    problems = [f"{doc.name}: unknown value key {key!r} "
                f"(not in values.json — rerun `repro report`?)"
                for key in unknown]
    if check:
        problems.extend(
            f"{doc.name}: stale value for {key!r} "
            f"(run `python tools/docgen.py` after `repro report`)"
            for key in stale if not key.startswith(VOLATILE_PREFIX))
    elif new_text != text:
        doc.write_text(new_text, encoding="utf-8")
        print(f"docgen: {doc.name}: updated {len(stale)} span(s)")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="verify the docs are in sync; write nothing")
    parser.add_argument("--values", default=DEFAULT_VALUES,
                        help=f"value map path (default: {DEFAULT_VALUES})")
    parser.add_argument("--bench-values", default=DEFAULT_BENCH_VALUES,
                        help=f"benchmark value map merged on top "
                             f"(default: {DEFAULT_BENCH_VALUES}; skipped "
                             f"when absent)")
    parser.add_argument("docs", nargs="*", default=list(DEFAULT_DOCS),
                        help="documents to process (default: README.md "
                             "DESIGN.md)")
    args = parser.parse_args(argv)

    values_path = REPO_ROOT / args.values
    if not values_path.is_file():
        print(f"docgen: missing {args.values}; run "
              f"`PYTHONPATH=src python -m repro report` first",
              file=sys.stderr)
        return 1
    values = load_values(values_path)
    bench_path = REPO_ROOT / args.bench_values
    if bench_path.is_file():
        values.update(load_values(bench_path))

    problems: list[str] = []
    spans = 0
    for name in args.docs:
        doc = REPO_ROOT / name
        if not doc.is_file():
            problems.append(f"{name}: document does not exist")
            continue
        spans += len(_SPAN.findall(doc.read_text(encoding="utf-8")))
        problems.extend(process_doc(doc, values, check=args.check))
    for problem in problems:
        print(f"docgen: {problem}", file=sys.stderr)
    if not problems:
        mode = "check OK" if args.check else "in sync"
        print(f"docgen: {mode} ({spans} placeholder span(s) across "
              f"{len(args.docs)} document(s))")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
